//! The HARVEY-style flow solver: D3Q19 BGK on an indirect-addressed fluid
//! mesh, with a runtime-selectable kernel configuration.
//!
//! Boundary conditions follow the paper's setup (§II-C): a Poiseuille
//! velocity profile imposed at inlets, a zero-pressure (unit-density)
//! condition at outlets, and halfway bounce-back at walls. The per-cell
//! boundary dispatch is hoisted out of the kernel: cells are sorted into
//! per-kind index lists (bulk-like / inlet / outlet) once at construction,
//! so the hot loops carry no branch on cell type.
//!
//! ## Kernel configurations
//!
//! [`SolverConfig::kernel`] selects the point in the paper's kernel space
//! the solver actually executes — `propagation × layout × precision`
//! (`Double` stores f64 distributions, `Single` stores f32 and halves
//! resident bytes; `Quad` remains model-only):
//!
//! * **AB** ([`Propagation::Ab`]): two distribution arrays, pull-stream
//!   from `f` into `f_tmp`, swap. Every step reads the full streaming
//!   index row.
//! * **AA** ([`Propagation::Aa`], Bailey et al.): one resident array
//!   updated in place. The **even** step is purely cell-local — read the
//!   cell's own row, collide, write back to the *opposite* slots; no
//!   `f_tmp`, no index traffic. The **odd** step gathers each arriving
//!   value from the `-c_q` neighbor's opposite slot through the streaming
//!   index, collides, and scatters forward into the `+c_q` neighbors'
//!   slots. Averaged over a step pair the index traffic halves and the
//!   second array disappears — exactly what
//!   [`crate::access_profile::AccessProfile`] prices (the paper's "AA
//!   shifted upwards from AB", §III-D).
//! * **AoS / SoA** ([`Layout`]): `f[cell][q]` vs `f[q][cell]` storage,
//!   monomorphized through [`LayoutIdx`] so the hot loop carries no
//!   layout branch.
//!
//! ## AA in-place safety (and why the parallel sweep is race-free)
//!
//! Let `S(c)` be the set of flat slots cell `c` touches in one AA step.
//! *Even* step: `S(c) = {(c, q)}` — its own row. *Odd* step: cell `c`
//! reads `(c − c_q, opp(q))` for every `q` and writes `(c + c_q, q)`;
//! substituting `q → opp(q)` shows the two sets are equal, and a solid
//! link folds both accesses onto the cell's own `(c, q)`/`(c, opp(q))`
//! pair. For distinct cells these sets are **pairwise disjoint** (the
//! streaming index is reciprocal: `(c + c_q, q)` is claimed only by `c`),
//! so the update is in-place safe serially and race-free under any
//! partition of the cell range — the owner-computes contract of
//! [`hemocloud_rt::pool::Pool::par_owner_mut`], the primitive every
//! parallel path here runs on. Within a run cells are visited in
//! ascending order and each cell's arithmetic is a pure function of the
//! pre-step state, so parallel and serial steps are bit-identical at any
//! logical worker count.
//!
//! ## Explicit vectorization (and why it is bit-neutral too)
//!
//! [`SolverConfig::simd`] selects between the historical one-cell-at-a-time
//! scalar loop and a fused gather–collide–scatter vector path that packs
//! `WIDTH` consecutive bulk cells of the per-kind index list into the lanes
//! of a [`hemocloud_rt::simd::Lane`] (4 × f64 or 8 × f32 under AVX2,
//! portable arrays elsewhere; `RT_SIMD` overrides the backend). The vector
//! path is **bitwise identical** to the scalar kernel by construction:
//!
//! 1. each cell's update is a pure function of its own gathered row, so
//!    which lane (or loop iteration) computes it cannot matter;
//! 2. the lane ops map 1:1 onto scalar IEEE-754 ops (`vaddpd` rounds each
//!    lane exactly like scalar `addsd`; no FMA contraction, no
//!    reassociation — the lane layer exposes only `+ - * /`);
//! 3. the collision body is the *same lane-generic code*
//!    (`equilibrium_v` and friends in [`crate::equilibrium`]) instantiated at
//!    `V = f64` for the scalar path and a wide `V` for the vector path —
//!    there is no second transcription to drift;
//! 4. gathering lanes into buffers and scattering them back is pure data
//!    movement.
//!
//! Remainder cells (list length mod `WIDTH`) and the few inlet/outlet
//! cells fall through to the scalar loop. The equivalence is enforced by
//! oracle tests over every kernel config × traversal × worker count.

use crate::equilibrium::{equilibrium_v, macroscopics_d3q19, macroscopics_v};
use crate::kernel::{
    AosIdx, KernelConfig, KernelSelect, Layout, LayoutIdx, Precision, Propagation, SimdPath,
    SoaIdx,
};
use crate::lattice::{opposite, Q19};
use crate::mesh::{FluidMesh, SOLID};
use crate::real::Real;
use crate::traversal::{self, prefetch_read, TraversalConfig};
use hemocloud_geometry::voxel::CellType;
use hemocloud_obs::{Counter, Histogram, HistogramKind, Registry};
use hemocloud_rt::pool::{self, DisjointMut};
use hemocloud_rt::simd::{Backend, Lane};
use std::sync::Arc;

/// Tunable parameters of a simulation.
#[derive(Debug, Clone, Copy)]
pub struct SolverConfig {
    /// BGK relaxation time τ (lattice units); kinematic viscosity is
    /// `ν = (τ - 1/2)/3`. Stability requires τ > 1/2.
    pub tau: f64,
    /// Peak inlet velocity (lattice units). Keep ≲ 0.1 for accuracy.
    pub u_max: f64,
    /// Unit vector of the inlet flow direction.
    pub flow_dir: (f64, f64, f64),
    /// Update cells in parallel (persistent worker pool) when the mesh
    /// has at least [`SolverConfig::parallel_threshold`] cells.
    pub parallel: bool,
    /// Minimum mesh size before parallelism pays for itself. Lower it to
    /// force the parallel path on small meshes (equivalence tests do).
    pub parallel_threshold: usize,
    /// Kernel variant to execute: `propagation`, `layout`, and `precision`
    /// are honored at runtime (`addressing` is always indirect on the
    /// sparse mesh; `Precision::Single` stores f32 distributions, `Quad`
    /// is model-only and rejected at construction). The same value feeds
    /// the performance model's byte accounting, so modeled and executed
    /// kernels can no longer diverge silently.
    pub kernel: KernelConfig,
    /// Traversal variant to execute: cell-visit order, cache blocking,
    /// software prefetch, and the parallel schedule. Bit-neutral by
    /// construction (see [`crate::traversal`]), so it can be swept freely
    /// without invalidating any physics result.
    pub traversal: TraversalConfig,
    /// Scalar loop vs explicitly vectorized collide-stream (module docs).
    /// Bit-neutral by construction, so the default is the fast path.
    pub simd: SimdPath,
    /// Fixed execution vs a construction-time autotune over
    /// `simd × traversal` candidates (see [`Solver::autotune_report`]).
    pub select: KernelSelect,
}

impl Default for SolverConfig {
    fn default() -> Self {
        Self {
            tau: 0.8,
            u_max: 0.05,
            flow_dir: (0.0, 0.0, 1.0),
            parallel: true,
            parallel_threshold: PARALLEL_THRESHOLD,
            kernel: KernelConfig::harvey(),
            traversal: TraversalConfig::natural(),
            simd: SimdPath::default(),
            select: KernelSelect::default(),
        }
    }
}

/// Per-step throughput record.
#[derive(Debug, Clone, Copy)]
pub struct RunStats {
    /// Lattice updates performed (fluid points × timesteps).
    pub updates: u64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Millions of fluid-point updates per second (paper Eq. 7).
    pub mflups: f64,
}

/// Distribution storage at the configured [`Precision`]: one concrete
/// array pair per runtime precision. `f_tmp` is allocated for AB only; AA
/// runs in place and it stays empty (half the resident solver memory).
enum Store {
    F64 { f: Vec<f64>, f_tmp: Vec<f64> },
    F32 { f: Vec<f32>, f_tmp: Vec<f32> },
}

impl Store {
    /// Total distribution values held (both arrays).
    fn len(&self) -> usize {
        match self {
            Store::F64 { f, f_tmp } => f.len() + f_tmp.len(),
            Store::F32 { f, f_tmp } => f.len() + f_tmp.len(),
        }
    }
}

/// The execution strategy resolved once at construction from
/// [`SolverConfig::simd`] and the process-wide lane backend
/// ([`hemocloud_rt::simd::backend`], overridable via `RT_SIMD`). All three
/// produce identical bits; they differ only in instruction selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ExecKind {
    /// One cell at a time, `V = R` (the historical loop).
    Scalar,
    /// Lane-grouped cells through the portable array lanes.
    VectorWide,
    /// Lane-grouped cells through the AVX2-accelerated lanes.
    VectorAccel,
}

pub(crate) fn resolve_exec(simd: SimdPath) -> ExecKind {
    match simd {
        SimdPath::Scalar => ExecKind::Scalar,
        SimdPath::Vector => match hemocloud_rt::simd::backend() {
            Backend::Avx2 => ExecKind::VectorAccel,
            Backend::Scalar => ExecKind::VectorWide,
        },
    }
}

impl ExecKind {
    /// Provenance label: which instruction path actually runs.
    pub(crate) fn label(self) -> &'static str {
        match self {
            ExecKind::Scalar => "scalar",
            ExecKind::VectorWide => "scalar-lanes",
            ExecKind::VectorAccel => "avx2",
        }
    }
}

/// One timed candidate from the construction-time autotune sweep.
#[derive(Debug, Clone)]
pub struct AutotuneCandidate {
    /// The SIMD path the candidate ran.
    pub simd: SimdPath,
    /// The traversal the candidate ran ([`TraversalConfig::name`]).
    pub traversal: String,
    /// Wall-clock seconds for the timed burst (lower is better).
    pub seconds: f64,
}

/// Outcome of [`KernelSelect::Auto`]: every candidate timed, plus the
/// winning combination the solver was configured with. The choice affects
/// wall-clock only — every candidate computes identical bits — so the
/// report is provenance, not physics.
#[derive(Debug, Clone)]
pub struct AutotuneReport {
    /// All timed candidates, in sweep order.
    pub candidates: Vec<AutotuneCandidate>,
    /// Winning SIMD path.
    pub simd: SimdPath,
    /// Winning traversal.
    pub traversal: TraversalConfig,
}

/// The flow solver.
pub struct Solver {
    mesh: FluidMesh,
    /// Distribution arrays at the configured precision.
    store: Store,
    omega: f64,
    config: SolverConfig,
    /// Resolved execution strategy (scalar / portable lanes / AVX2 lanes).
    exec: ExecKind,
    /// Per-cell slot into `inlet_vel` (`u32::MAX` for non-inlet cells).
    inlet_slot: Vec<u32>,
    /// Prescribed velocity for each inlet cell (f64 master copy).
    inlet_vel: Vec<[f64; 3]>,
    /// `inlet_vel` rounded once to f32 for the single-precision kernels.
    inlet_vel_f32: Vec<[f32; 3]>,
    /// Cells sorted by update kind, precomputed once so the hot loop does
    /// not re-dispatch on `mesh.cell_type(cell)` every step.
    kinds: KindLists,
    steps_taken: u64,
    /// Present when construction ran the [`KernelSelect::Auto`] sweep.
    autotune: Option<AutotuneReport>,
    obs: SolverObs,
}

/// Handles into an [`hemocloud_obs`] registry, fetched once at
/// construction so per-step recording is a handful of lock-free atomic
/// adds. Step/cell counters are deterministic (pure functions of the
/// stepping program); the timing histograms are wall-clock and export
/// count-only in deterministic snapshots.
pub(crate) struct SolverObs {
    pub(crate) steps: Arc<Counter>,
    pub(crate) cells_bulk: Arc<Counter>,
    pub(crate) cells_inlet: Arc<Counter>,
    pub(crate) cells_outlet: Arc<Counter>,
    pub(crate) step_seconds: Arc<Histogram>,
    pub(crate) step_mflups: Arc<Histogram>,
}

impl SolverObs {
    pub(crate) fn from_registry(reg: &Registry) -> Self {
        Self {
            steps: reg.counter("lbm.steps"),
            cells_bulk: reg.counter("lbm.cell_updates.bulk"),
            cells_inlet: reg.counter("lbm.cell_updates.inlet"),
            cells_outlet: reg.counter("lbm.cell_updates.outlet"),
            step_seconds: reg.histogram(
                "lbm.step_seconds",
                HistogramKind::WallTime,
                &[1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0],
            ),
            step_mflups: reg.histogram(
                "lbm.step_mflups",
                HistogramKind::WallTime,
                &[1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0],
            ),
        }
    }

    /// Record one completed step over a mesh with the given per-kind cell
    /// counts and wall duration.
    pub(crate) fn record_step(&self, kinds: &KindLists, seconds: f64) {
        self.steps.inc();
        self.cells_bulk.add(kinds.bulk.len() as u64);
        self.cells_inlet.add(kinds.inlet.len() as u64);
        self.cells_outlet.add(kinds.outlet.len() as u64);
        self.step_seconds.record(seconds);
        let cells = (kinds.bulk.len() + kinds.inlet.len() + kinds.outlet.len()) as f64;
        // Recorded unconditionally so the sample count stays one-per-step
        // (deterministic); a zero-duration step yields a non-finite rate,
        // which the histogram banks in its overflow bucket.
        self.step_mflups.record(cells / seconds / 1e6);
    }
}

/// One kind's cells in **traversal order**, paired with each cell's
/// traversal *position* so contiguous position ranges (the unit the
/// parallel partition and cache blocking slice by) map back to a
/// contiguous sub-slice of the list.
pub(crate) struct KindList {
    /// Cell ids, ordered by traversal position.
    pub(crate) cells: Vec<u32>,
    /// Traversal position of `cells[i]` — strictly ascending, so
    /// [`KindList::in_range`] is two binary searches.
    pub(crate) pos: Vec<u32>,
}

impl KindList {
    /// Number of cells of this kind.
    pub(crate) fn len(&self) -> usize {
        self.cells.len()
    }

    /// The cells whose traversal positions fall in `[first, end)`, in
    /// traversal order.
    pub(crate) fn in_range(&self, first: usize, end: usize) -> &[u32] {
        let lo = self.pos.partition_point(|&p| (p as usize) < first);
        let hi = self.pos.partition_point(|&p| (p as usize) < end);
        &self.cells[lo..hi]
    }
}

/// Per-kind cell lists in traversal order. `bulk` holds every cell that
/// takes the plain BGK collide path (bulk *and* wall fluid — bounce-back
/// is handled in the gather, exactly as the old `_ =>` match arm did);
/// `inlet` and `outlet` hold the Dirichlet/zero-pressure cells. Under the
/// natural traversal `pos == cells` and this degenerates to the historical
/// ascending-id lists.
pub(crate) struct KindLists {
    pub(crate) bulk: KindList,
    pub(crate) inlet: KindList,
    pub(crate) outlet: KindList,
}

impl KindLists {
    /// Sort the mesh's cells into kind lists along `order`, where
    /// `order[p]` is the cell visited at traversal position `p` (a
    /// permutation of the cell ids — see [`traversal::permutation`]).
    pub(crate) fn build(mesh: &FluidMesh, order: &[u32]) -> Self {
        debug_assert_eq!(order.len(), mesh.len());
        let mut lists = [(); 3].map(|_| KindList {
            cells: Vec::new(),
            pos: Vec::new(),
        });
        for (p, &cell) in order.iter().enumerate() {
            let k = match mesh.cell_type(cell as usize) {
                CellType::Inlet => 1,
                CellType::Outlet => 2,
                _ => 0,
            };
            lists[k].cells.push(cell);
            lists[k].pos.push(p as u32);
        }
        let [bulk, inlet, outlet] = lists;
        Self { bulk, inlet, outlet }
    }
}

/// Default minimum mesh size before thread parallelism pays for itself.
const PARALLEL_THRESHOLD: usize = 8192;

/// Prefetch lookahead (in list entries) for neighbor-index rows. The row
/// is a dependent load feeding 19 further loads, so it wants the longest
/// lead time.
const PF_IDX_AHEAD: usize = 24;
/// Prefetch lookahead (in list entries) for the 19 gather/scatter
/// distribution slots, which require the neighbor row to already be
/// resolvable — hence the shorter distance.
const PF_F_AHEAD: usize = 6;

/// Issue software prefetches for the AB pull-gather working set of cells
/// a few list entries ahead of `i`: the neighbor-index row at long range
/// and the 19 gather-source slots at short range. Pure scheduling hints —
/// no loads, no stores — so bit-neutral by construction.
#[inline(always)]
fn prefetch_ab_gather<L: LayoutIdx, R>(
    mesh: &FluidMesh,
    src: *const R,
    n: usize,
    list: &[u32],
    i: usize,
) {
    if let Some(&c) = list.get(i + PF_IDX_AHEAD) {
        prefetch_read(mesh.neighbor_row(c as usize).as_ptr());
    }
    if let Some(&c) = list.get(i + PF_F_AHEAD) {
        let cell = c as usize;
        let row = mesh.neighbor_row(cell);
        for q in 0..Q19 {
            let nb = row[opposite(q)];
            let idx = if nb == SOLID {
                L::at(cell, opposite(q), n)
            } else {
                L::at(nb as usize, q, n)
            };
            prefetch_read(src.wrapping_add(idx));
        }
    }
}

/// Issue software prefetches for the AA odd-step working set of cells
/// ahead of `i`. The odd step's scatter set equals its gather set
/// (module docs), so one pass covers both directions of the traffic.
#[inline(always)]
fn prefetch_aa_odd<L: LayoutIdx, R>(
    mesh: &FluidMesh,
    f: *const R,
    n: usize,
    list: &[u32],
    i: usize,
) {
    if let Some(&c) = list.get(i + PF_IDX_AHEAD) {
        prefetch_read(mesh.neighbor_row(c as usize).as_ptr());
    }
    if let Some(&c) = list.get(i + PF_F_AHEAD) {
        let cell = c as usize;
        let row = mesh.neighbor_row(cell);
        for q in 0..Q19 {
            let nb = row[opposite(q)];
            let idx = if nb == SOLID {
                L::at(cell, q, n)
            } else {
                L::at(nb as usize, opposite(q), n)
            };
            prefetch_read(f.wrapping_add(idx));
        }
    }
}

/// Dispatch one owner-computes job over `n` traversal positions onto
/// either the static balanced partition or the work-stealing scheduler,
/// per the traversal config. Both produce identical bits — the schedule
/// only decides which worker visits which position range — and a single
/// logical worker always takes the static path, so `RT_POOL_THREADS=1`
/// provably bypasses stealing. Shared by [`Solver`] and
/// [`crate::ranked::RankedSolver`].
pub(crate) fn dispatch_owner<T, F>(
    trav: &TraversalConfig,
    data: &mut [T],
    n: usize,
    workers: usize,
    body: F,
) where
    T: Copy + Send,
    F: Fn(std::ops::Range<usize>, &DisjointMut<'_, T>) + Sync,
{
    if trav.stealing && workers > 1 {
        let chunk = trav.steal_chunk_for(n, workers);
        pool::global().par_owner_mut_stealing_workers(data, n, chunk, workers, body);
    } else {
        pool::global().par_owner_mut_workers(data, n, workers, body);
    }
}

/// Run `body(first, end)` over `[positions.start, positions.end)` in
/// cache blocks of `block` traversal positions (one call for the whole
/// range when blocking is off). Blocking only re-cuts the iteration
/// space — each position is still visited exactly once, in ascending
/// order — so it is bit-neutral for the per-cell-pure kernels here.
#[inline(always)]
fn for_each_block(
    positions: std::ops::Range<usize>,
    block: usize,
    mut body: impl FnMut(usize, usize),
) {
    if block == 0 {
        body(positions.start, positions.end);
        return;
    }
    let mut bs = positions.start;
    while bs < positions.end {
        let be = (bs + block).min(positions.end);
        body(bs, be);
        bs = be;
    }
}

/// Flat index of `(cell, q)` for a runtime [`Layout`] value — the
/// non-monomorphized twin of [`LayoutIdx::at`], for cold paths
/// (initialization, readouts, halo snapshots).
#[inline]
pub(crate) fn flat_index(layout: Layout, cell: usize, q: usize, n: usize) -> usize {
    match layout {
        Layout::Soa => SoaIdx::at(cell, q, n),
        Layout::Aos => AosIdx::at(cell, q, n),
    }
}

/// Rest-equilibrium initial distributions for an `n`-cell mesh in the
/// given layout, at the element precision (f32 rests are the once-rounded
/// weights).
pub(crate) fn rest_distributions<R: Real>(layout: Layout, n: usize) -> Vec<R> {
    let mut f = vec![R::ZERO; n * Q19];
    for cell in 0..n {
        for q in 0..Q19 {
            f[flat_index(layout, cell, q, n)] = R::W19[q];
        }
    }
    f
}

/// Lane-generic post-collision row of a bulk (or wall) fluid cell: plain
/// BGK, the exact expression tree of the historical scalar kernel per
/// lane. This is the *only* collision body — the scalar path is its
/// `V = R` instantiation, so scalar and vector cannot drift.
#[inline(always)]
pub(crate) fn bulk_out_v<R: Real, V: Lane<R>>(fin: &[V; Q19], omega: V) -> [V; Q19] {
    let (rho, ux, uy, uz) = macroscopics_v::<R, V>(fin);
    let mut feq = [V::splat(R::ZERO); Q19];
    equilibrium_v::<R, V>(rho, ux, uy, uz, &mut feq);
    let mut out = [V::splat(R::ZERO); Q19];
    for q in 0..Q19 {
        out[q] = fin[q] - omega * (fin[q] - feq[q]);
    }
    out
}

/// Post-collision row of a bulk (or wall) fluid cell: plain BGK.
#[inline]
pub(crate) fn bulk_out<R: Real>(fin: &[R; Q19], omega: R) -> [R; Q19] {
    bulk_out_v::<R, R>(fin, omega)
}

/// Post-update row of a Dirichlet velocity inlet: equilibrium at the
/// prescribed profile velocity and the gathered density.
#[inline]
pub(crate) fn inlet_out<R: Real>(fin: &[R; Q19], v: [R; 3]) -> [R; Q19] {
    let (rho, _, _, _) = macroscopics_v::<R, R>(fin);
    let mut feq = [R::ZERO; Q19];
    equilibrium_v::<R, R>(rho, v[0], v[1], v[2], &mut feq);
    feq
}

/// Post-update row of a zero-pressure outlet: equilibrium at unit density
/// and the gathered velocity.
#[inline]
pub(crate) fn outlet_out<R: Real>(fin: &[R; Q19]) -> [R; Q19] {
    let (_, ux, uy, uz) = macroscopics_v::<R, R>(fin);
    let mut feq = [R::ZERO; Q19];
    equilibrium_v::<R, R>(R::ONE, ux, uy, uz, &mut feq);
    feq
}

/// Widest lane any element exposes (f32 × AVX2 = 8); the lane staging
/// buffers are sized to it and vector loops use the first `V::WIDTH`
/// entries.
pub(crate) const VEC_MAXW: usize = 8;

/// Fused vector collision of up to [`VEC_MAXW`] bulk cells staged
/// lane-outer in `fin` (`fin[q][lane]` is lane `lane`'s direction `q`):
/// load each direction across lanes, run the lane-generic BGK body once,
/// store back. The staging moves bytes, never arithmetic, so each lane's
/// result is bitwise the scalar [`bulk_out`] of that cell.
#[inline(always)]
pub(crate) fn collide_bulk_group<R: Real, V: Lane<R>>(
    fin: &[[R; VEC_MAXW]; Q19],
    omega: R,
) -> [[R; VEC_MAXW]; Q19] {
    let mut vin = [V::splat(R::ZERO); Q19];
    for q in 0..Q19 {
        vin[q] = V::load(&fin[q]);
    }
    let vout = bulk_out_v::<R, V>(&vin, V::splat(omega));
    let mut rows = [[R::ZERO; VEC_MAXW]; Q19];
    for q in 0..Q19 {
        vout[q].store(&mut rows[q]);
    }
    rows
}

impl Solver {
    /// Initialize the solver at rest (`ρ = 1`, `u = 0`) and precompute the
    /// inlet Poiseuille profile. Metrics bind to the global registry; use
    /// [`Solver::new_in`] to bind elsewhere (and to keep the
    /// [`KernelSelect::Auto`] calibration burst out of the global
    /// counters).
    pub fn new(mesh: FluidMesh, config: SolverConfig) -> Self {
        Self::new_in(mesh, config, hemocloud_obs::global())
    }

    /// [`Solver::new`] with an explicit metrics registry. When
    /// [`SolverConfig::select`] is [`KernelSelect::Auto`], a short
    /// calibration burst is timed here (on scratch solvers bound to a
    /// private registry, so no calibration steps leak into `registry`) and
    /// the winning `simd × traversal` combination replaces the configured
    /// one; the full sweep is kept in [`Solver::autotune_report`].
    pub fn new_in(mesh: FluidMesh, config: SolverConfig, registry: &Registry) -> Self {
        assert!(config.tau > 0.5, "tau must exceed 1/2 for stability");
        assert!(
            config.kernel.precision != Precision::Quad,
            "Quad precision is model-only; runtime storage is f32 or f64"
        );
        let (config, autotune) = if config.select == KernelSelect::Auto {
            let report = autotune_sweep(&mesh, &config);
            // Record the choice: a counter keyed by the winning combo, so
            // a snapshot shows *what* was selected, not just that a sweep
            // ran. The key is wall-clock-dependent (that is the point of
            // autotuning) — deterministic-snapshot consumers construct
            // `Auto` solvers outside their capture window, as
            // `bench_baseline` does.
            registry
                .counter(&format!(
                    "lbm.autotune.selected.{}.{}",
                    report.simd.label(),
                    report.traversal.name()
                ))
                .inc();
            let tuned = SolverConfig {
                simd: report.simd,
                traversal: report.traversal,
                select: KernelSelect::Fixed,
                ..config
            };
            (tuned, Some(report))
        } else {
            (config, None)
        };
        let n = mesh.len();
        // AA streams in place: the scratch array is never allocated.
        let ab = matches!(config.kernel.propagation, Propagation::Ab);
        let store = match config.kernel.precision {
            Precision::Single => {
                let f = rest_distributions::<f32>(config.kernel.layout, n);
                let f_tmp = if ab { f.clone() } else { Vec::new() };
                Store::F32 { f, f_tmp }
            }
            _ => {
                let f = rest_distributions::<f64>(config.kernel.layout, n);
                let f_tmp = if ab { f.clone() } else { Vec::new() };
                Store::F64 { f, f_tmp }
            }
        };

        // NOTE: the profile folds inlet centroids in ascending cell-id
        // order; it must be computed before (and independently of) the
        // traversal permutation, or reordering would reassociate its
        // floating-point sums and change the boundary data bits. The f32
        // copy is the f64 profile rounded once, not a re-derivation.
        let (inlet_slot, inlet_vel) = Self::poiseuille_profile(&mesh, &config);
        let inlet_vel_f32 = inlet_vel
            .iter()
            .map(|v| [v[0] as f32, v[1] as f32, v[2] as f32])
            .collect();
        let order = traversal::permutation(&mesh, config.traversal.order);
        let kinds = KindLists::build(&mesh, &order);

        Self {
            mesh,
            store,
            omega: 1.0 / config.tau,
            exec: resolve_exec(config.simd),
            config,
            inlet_slot,
            inlet_vel,
            inlet_vel_f32,
            kinds,
            steps_taken: 0,
            autotune,
            obs: SolverObs::from_registry(registry),
        }
    }

    /// Rebind this solver's metrics to `registry` (default: the global
    /// registry). Tests use private registries so `cargo test`'s
    /// process-level parallelism cannot cross-pollute their counters.
    pub fn use_registry(&mut self, registry: &Registry) {
        self.obs = SolverObs::from_registry(registry);
    }

    /// Compute the prescribed inlet velocities: a parabolic profile over
    /// the inlet cross-section, `u(r) = u_max (1 - (r/R)²)` along the flow
    /// direction.
    fn poiseuille_profile(mesh: &FluidMesh, config: &SolverConfig) -> (Vec<u32>, Vec<[f64; 3]>) {
        poiseuille_profile_for(mesh, config)
    }
}

/// The [`KernelSelect::Auto`] calibration sweep: time each
/// `simd × traversal` candidate on a scratch solver (warmup then a short
/// timed burst) and keep the fastest. Candidates compute identical bits —
/// only wall-clock differs — and the scratch solvers bind to a throwaway
/// registry, so the sweep perturbs neither physics nor the caller's
/// metrics. The winner is decided by strict `<` in sweep order, making
/// tie-breaks deterministic even if the timings are not.
fn autotune_sweep(mesh: &FluidMesh, config: &SolverConfig) -> AutotuneReport {
    const WARMUP_STEPS: u64 = 2;
    const TIMED_STEPS: u64 = 4;
    let mut traversals: Vec<TraversalConfig> = Vec::new();
    for cand in [
        config.traversal,
        TraversalConfig::natural(),
        TraversalConfig::tuned(),
    ] {
        if traversals.iter().all(|t| t.name() != cand.name()) {
            traversals.push(cand);
        }
    }
    let scratch = Registry::new();
    let mut candidates = Vec::new();
    let mut best: Option<(f64, SimdPath, TraversalConfig)> = None;
    for simd in [SimdPath::Scalar, SimdPath::Vector] {
        for &trav in &traversals {
            let mut s = Solver::new_in(
                mesh.clone(),
                SolverConfig {
                    simd,
                    traversal: trav,
                    select: KernelSelect::Fixed,
                    ..*config
                },
                &scratch,
            );
            for _ in 0..WARMUP_STEPS {
                s.step();
            }
            let t0 = std::time::Instant::now();
            for _ in 0..TIMED_STEPS {
                s.step();
            }
            let seconds = t0.elapsed().as_secs_f64();
            candidates.push(AutotuneCandidate {
                simd,
                traversal: trav.name(),
                seconds,
            });
            if best.is_none_or(|(b, _, _)| seconds < b) {
                best = Some((seconds, simd, trav));
            }
        }
    }
    let (_, simd, traversal) = best.expect("autotune sweep has at least one candidate");
    AutotuneReport {
        candidates,
        simd,
        traversal,
    }
}

/// Prescribed inlet velocities for a mesh: a parabolic (Poiseuille) profile
/// over the inlet cross-section. Returns a per-cell slot vector
/// (`u32::MAX` for non-inlet cells) and the per-inlet-cell velocities.
/// Shared by [`Solver`] and [`crate::ranked::RankedSolver`] so the two
/// impose bitwise-identical boundary data.
pub fn poiseuille_profile_for(
    mesh: &FluidMesh,
    config: &SolverConfig,
) -> (Vec<u32>, Vec<[f64; 3]>) {
    {
        // Block-scoped to keep the body identical to the original inline
        // implementation (bitwise-identical boundary data matters to the
        // ranked-solver equivalence test).
        let inlets = mesh.cells_of_type(CellType::Inlet);
        let mut slot = vec![u32::MAX; mesh.len()];
        if inlets.is_empty() {
            return (slot, Vec::new());
        }
        let d = config.flow_dir;
        let dn = (d.0 * d.0 + d.1 * d.1 + d.2 * d.2).sqrt();
        assert!(dn > 0.0, "flow direction must be nonzero");
        let d = (d.0 / dn, d.1 / dn, d.2 / dn);

        // Centroid of the inlet cells.
        let mut cx = 0.0;
        let mut cy = 0.0;
        let mut cz = 0.0;
        for &cell in &inlets {
            let (x, y, z) = mesh.coords(cell);
            cx += x as f64;
            cy += y as f64;
            cz += z as f64;
        }
        let inv = 1.0 / inlets.len() as f64;
        let (cx, cy, cz) = (cx * inv, cy * inv, cz * inv);

        // Radial distance of each inlet cell from the flow axis.
        let radial = |x: f64, y: f64, z: f64| -> f64 {
            let (px, py, pz) = (x - cx, y - cy, z - cz);
            let along = px * d.0 + py * d.1 + pz * d.2;
            let (rx, ry, rz) = (px - along * d.0, py - along * d.1, pz - along * d.2);
            (rx * rx + ry * ry + rz * rz).sqrt()
        };
        let mut r_max = 0.0f64;
        let mut radii = Vec::with_capacity(inlets.len());
        for &cell in &inlets {
            let (x, y, z) = mesh.coords(cell);
            let r = radial(x as f64, y as f64, z as f64);
            r_max = r_max.max(r);
            radii.push(r);
        }
        let r_edge = r_max + 0.5; // wall sits half a voxel beyond the last cell

        let mut vel = Vec::with_capacity(inlets.len());
        for (&cell, &r) in inlets.iter().zip(&radii) {
            let u = config.u_max * (1.0 - (r / r_edge) * (r / r_edge));
            slot[cell] = vel.len() as u32;
            vel.push([u * d.0, u * d.1, u * d.2]);
        }
        (slot, vel)
    }
}

/// AB pull-scheme gather: the value arriving along `q` comes from the
/// neighbor opposite `q`; a solid link reflects this cell's own
/// opposite-direction value from the previous step.
#[inline]
fn gather_ab<L: LayoutIdx, R: Real>(
    mesh: &FluidMesh,
    src: &[R],
    n: usize,
    cell: usize,
) -> [R; Q19] {
    let mut fin = [R::ZERO; Q19];
    let row = mesh.neighbor_row(cell);
    for q in 0..Q19 {
        let nb = row[opposite(q)];
        fin[q] = if nb == SOLID {
            src[L::at(cell, opposite(q), n)]
        } else {
            src[L::at(nb as usize, q, n)]
        };
    }
    fin
}

/// AA even-step read: the cell's own row, in place.
#[inline]
fn read_own_row<L: LayoutIdx, R: Real>(f: &DisjointMut<'_, R>, n: usize, cell: usize) -> [R; Q19] {
    let mut fin = [R::ZERO; Q19];
    for (q, v) in fin.iter_mut().enumerate() {
        // Safety: slot (cell, q) belongs to `cell` alone this step.
        *v = unsafe { f.read(L::at(cell, q, n)) };
    }
    fin
}

/// AA even-step write: the cell's opposite slots, in place. The row was
/// fully read before the first write.
#[inline]
fn write_opposite_row<L: LayoutIdx, R: Real>(
    f: &DisjointMut<'_, R>,
    n: usize,
    cell: usize,
    row: &[R; Q19],
) {
    for q in 0..Q19 {
        // Safety: same per-cell slot set the reads used.
        unsafe { f.write(L::at(cell, opposite(q), n), row[q]) };
    }
}

/// AA odd-step gather: each arriving value from the `-c_q` neighbor's
/// opposite slot; bounce-back folds onto the cell's own slot.
#[inline]
fn gather_aa_odd<L: LayoutIdx, R: Real>(
    mesh: &FluidMesh,
    f: &DisjointMut<'_, R>,
    n: usize,
    cell: usize,
) -> [R; Q19] {
    let mut fin = [R::ZERO; Q19];
    let row = mesh.neighbor_row(cell);
    for q in 0..Q19 {
        let nb = row[opposite(q)];
        // Safety: slot belongs to `cell`'s AA-odd slot set.
        fin[q] = if nb == SOLID {
            unsafe { f.read(L::at(cell, q, n)) }
        } else {
            unsafe { f.read(L::at(nb as usize, opposite(q), n)) }
        };
    }
    fin
}

/// AA odd-step scatter: forward into the `+c_q` neighbors' slots — the
/// identical slot set the gather read, fully read before the first write.
#[inline]
fn scatter_aa_odd<L: LayoutIdx, R: Real>(
    mesh: &FluidMesh,
    f: &DisjointMut<'_, R>,
    n: usize,
    cell: usize,
    out: &[R; Q19],
) {
    let row = mesh.neighbor_row(cell);
    for q in 0..Q19 {
        let nb = row[q];
        // Safety: identical slot set as the gather above.
        if nb == SOLID {
            unsafe { f.write(L::at(cell, opposite(q), n), out[q]) };
        } else {
            unsafe { f.write(L::at(nb as usize, q, n), out[q]) };
        }
    }
}

/// AB update of every destination cell whose traversal position falls
/// in `positions`: gather from `src`, collide/apply boundary
/// conditions, write the destination view. Each cell's 19 values are a
/// pure function of `src` and the write slots of distinct cells are
/// disjoint (`LayoutIdx::at` is injective), so any partition of the
/// position range is race-free and bit-identical to serial — and any
/// traversal permutation, blocking, or prefetch setting leaves the
/// bits unchanged too.
#[allow(clippy::too_many_arguments)]
fn ab_update_range<L: LayoutIdx, R: Real>(
    mesh: &FluidMesh,
    src: &[R],
    omega: R,
    inlet_slot: &[u32],
    inlet_vel: &[[R; 3]],
    kinds: &KindLists,
    trav: &TraversalConfig,
    positions: std::ops::Range<usize>,
    out: &DisjointMut<'_, R>,
) {
    let n = mesh.len();
    let pf = trav.prefetch;
    let write = |cell: usize, row: &[R; Q19]| {
        for q in 0..Q19 {
            // Safety: slot (cell, q) belongs to `cell` alone.
            unsafe { out.write(L::at(cell, q, n), row[q]) };
        }
    };
    for_each_block(positions, trav.block, |first, end| {
        let list = kinds.bulk.in_range(first, end);
        for (i, &cell) in list.iter().enumerate() {
            if pf {
                prefetch_ab_gather::<L, R>(mesh, src.as_ptr(), n, list, i);
            }
            let cell = cell as usize;
            let fin = gather_ab::<L, R>(mesh, src, n, cell);
            write(cell, &bulk_out(&fin, omega));
        }
        for &cell in kinds.inlet.in_range(first, end) {
            let cell = cell as usize;
            let fin = gather_ab::<L, R>(mesh, src, n, cell);
            write(cell, &inlet_out(&fin, inlet_vel[inlet_slot[cell] as usize]));
        }
        for &cell in kinds.outlet.in_range(first, end) {
            let cell = cell as usize;
            let fin = gather_ab::<L, R>(mesh, src, n, cell);
            write(cell, &outlet_out(&fin));
        }
    });
}

/// Vectorized AB update: lane-width groups of bulk cells go through the
/// fused gather–collide–scatter ([`collide_bulk_group`]); remainder
/// lanes and the few inlet/outlet cells fall through to the scalar
/// path. Bitwise identical to [`ab_update_range`] — module docs.
#[allow(clippy::too_many_arguments)]
fn ab_update_range_vec<L: LayoutIdx, R: Real, V: Lane<R>>(
    mesh: &FluidMesh,
    src: &[R],
    omega: R,
    inlet_slot: &[u32],
    inlet_vel: &[[R; 3]],
    kinds: &KindLists,
    trav: &TraversalConfig,
    positions: std::ops::Range<usize>,
    out: &DisjointMut<'_, R>,
) {
    let n = mesh.len();
    let pf = trav.prefetch;
    let w = V::WIDTH;
    debug_assert!(w <= VEC_MAXW);
    let write = |cell: usize, row: &[R; Q19]| {
        for q in 0..Q19 {
            // Safety: slot (cell, q) belongs to `cell` alone.
            unsafe { out.write(L::at(cell, q, n), row[q]) };
        }
    };
    for_each_block(positions, trav.block, |first, end| {
        let list = kinds.bulk.in_range(first, end);
        let mut i = 0;
        while i + w <= list.len() {
            let mut fin = [[R::ZERO; VEC_MAXW]; Q19];
            for lane in 0..w {
                if pf {
                    prefetch_ab_gather::<L, R>(mesh, src.as_ptr(), n, list, i + lane);
                }
                let g = gather_ab::<L, R>(mesh, src, n, list[i + lane] as usize);
                for q in 0..Q19 {
                    fin[q][lane] = g[q];
                }
            }
            let rows = collide_bulk_group::<R, V>(&fin, omega);
            for lane in 0..w {
                let cell = list[i + lane] as usize;
                for q in 0..Q19 {
                    // Safety: slot (cell, q) belongs to `cell` alone.
                    unsafe { out.write(L::at(cell, q, n), rows[q][lane]) };
                }
            }
            i += w;
        }
        for (j, &cell) in list.iter().enumerate().skip(i) {
            if pf {
                prefetch_ab_gather::<L, R>(mesh, src.as_ptr(), n, list, j);
            }
            let cell = cell as usize;
            let fin = gather_ab::<L, R>(mesh, src, n, cell);
            write(cell, &bulk_out(&fin, omega));
        }
        for &cell in kinds.inlet.in_range(first, end) {
            let cell = cell as usize;
            let fin = gather_ab::<L, R>(mesh, src, n, cell);
            write(cell, &inlet_out(&fin, inlet_vel[inlet_slot[cell] as usize]));
        }
        for &cell in kinds.outlet.in_range(first, end) {
            let cell = cell as usize;
            let fin = gather_ab::<L, R>(mesh, src, n, cell);
            write(cell, &outlet_out(&fin));
        }
    });
}

/// AA even step over `cells`: purely cell-local — read the cell's own
/// row, collide, write the opposite slots in place. No streaming-index
/// traffic, no scratch array.
#[allow(clippy::too_many_arguments)]
fn aa_even_range<L: LayoutIdx, R: Real>(
    mesh: &FluidMesh,
    omega: R,
    inlet_slot: &[u32],
    inlet_vel: &[[R; 3]],
    kinds: &KindLists,
    trav: &TraversalConfig,
    positions: std::ops::Range<usize>,
    f: &DisjointMut<'_, R>,
) {
    let n = mesh.len();
    // No prefetch here: the even step is purely cell-local, so its
    // access stream is the list itself — the hardware prefetcher's
    // easiest case.
    for_each_block(positions, trav.block, |first, end| {
        for &cell in kinds.bulk.in_range(first, end) {
            let cell = cell as usize;
            let fin = read_own_row::<L, R>(f, n, cell);
            write_opposite_row::<L, R>(f, n, cell, &bulk_out(&fin, omega));
        }
        for &cell in kinds.inlet.in_range(first, end) {
            let cell = cell as usize;
            let fin = read_own_row::<L, R>(f, n, cell);
            write_opposite_row::<L, R>(
                f,
                n,
                cell,
                &inlet_out(&fin, inlet_vel[inlet_slot[cell] as usize]),
            );
        }
        for &cell in kinds.outlet.in_range(first, end) {
            let cell = cell as usize;
            let fin = read_own_row::<L, R>(f, n, cell);
            write_opposite_row::<L, R>(f, n, cell, &outlet_out(&fin));
        }
    });
}

/// Vectorized AA even step: lane-width groups of bulk cells through the
/// fused in-place collide; remainder and boundary cells scalar. Bitwise
/// identical to [`aa_even_range`].
#[allow(clippy::too_many_arguments)]
fn aa_even_range_vec<L: LayoutIdx, R: Real, V: Lane<R>>(
    mesh: &FluidMesh,
    omega: R,
    inlet_slot: &[u32],
    inlet_vel: &[[R; 3]],
    kinds: &KindLists,
    trav: &TraversalConfig,
    positions: std::ops::Range<usize>,
    f: &DisjointMut<'_, R>,
) {
    let n = mesh.len();
    let w = V::WIDTH;
    debug_assert!(w <= VEC_MAXW);
    for_each_block(positions, trav.block, |first, end| {
        let list = kinds.bulk.in_range(first, end);
        let mut i = 0;
        while i + w <= list.len() {
            let mut fin = [[R::ZERO; VEC_MAXW]; Q19];
            for lane in 0..w {
                let g = read_own_row::<L, R>(f, n, list[i + lane] as usize);
                for q in 0..Q19 {
                    fin[q][lane] = g[q];
                }
            }
            let rows = collide_bulk_group::<R, V>(&fin, omega);
            for lane in 0..w {
                let cell = list[i + lane] as usize;
                for q in 0..Q19 {
                    // Safety: same per-cell slot set the reads used.
                    unsafe { f.write(L::at(cell, opposite(q), n), rows[q][lane]) };
                }
            }
            i += w;
        }
        for &cell in &list[i..] {
            let cell = cell as usize;
            let fin = read_own_row::<L, R>(f, n, cell);
            write_opposite_row::<L, R>(f, n, cell, &bulk_out(&fin, omega));
        }
        for &cell in kinds.inlet.in_range(first, end) {
            let cell = cell as usize;
            let fin = read_own_row::<L, R>(f, n, cell);
            write_opposite_row::<L, R>(
                f,
                n,
                cell,
                &inlet_out(&fin, inlet_vel[inlet_slot[cell] as usize]),
            );
        }
        for &cell in kinds.outlet.in_range(first, end) {
            let cell = cell as usize;
            let fin = read_own_row::<L, R>(f, n, cell);
            write_opposite_row::<L, R>(f, n, cell, &outlet_out(&fin));
        }
    });
}

/// AA odd step over `cells`: gather each arriving value from the
/// `-c_q` neighbor's opposite slot (bounce-back folds onto the cell's
/// own slot), collide, scatter forward into the `+c_q` neighbors'
/// slots. Per cell the write set equals the read set and the sets of
/// distinct cells are disjoint (module docs), so the scattered writes
/// are race-free under any cell partition.
#[allow(clippy::too_many_arguments)]
fn aa_odd_range<L: LayoutIdx, R: Real>(
    mesh: &FluidMesh,
    omega: R,
    inlet_slot: &[u32],
    inlet_vel: &[[R; 3]],
    kinds: &KindLists,
    trav: &TraversalConfig,
    positions: std::ops::Range<usize>,
    f: &DisjointMut<'_, R>,
) {
    let n = mesh.len();
    let pf = trav.prefetch;
    for_each_block(positions, trav.block, |first, end| {
        let list = kinds.bulk.in_range(first, end);
        for (i, &cell) in list.iter().enumerate() {
            if pf {
                prefetch_aa_odd::<L, R>(mesh, f.as_ptr(), n, list, i);
            }
            let cell = cell as usize;
            let fin = gather_aa_odd::<L, R>(mesh, f, n, cell);
            scatter_aa_odd::<L, R>(mesh, f, n, cell, &bulk_out(&fin, omega));
        }
        for &cell in kinds.inlet.in_range(first, end) {
            let cell = cell as usize;
            let fin = gather_aa_odd::<L, R>(mesh, f, n, cell);
            scatter_aa_odd::<L, R>(
                mesh,
                f,
                n,
                cell,
                &inlet_out(&fin, inlet_vel[inlet_slot[cell] as usize]),
            );
        }
        for &cell in kinds.outlet.in_range(first, end) {
            let cell = cell as usize;
            let fin = gather_aa_odd::<L, R>(mesh, f, n, cell);
            scatter_aa_odd::<L, R>(mesh, f, n, cell, &outlet_out(&fin));
        }
    });
}

/// Vectorized AA odd step: lane-width groups of bulk cells through the
/// fused gather–collide–scatter; remainder and boundary cells scalar.
/// Grouping is safe because distinct cells' AA-odd slot sets are
/// pairwise disjoint (module docs) — deferring a lane's scatter past
/// another lane's gather cannot change what either observes. Bitwise
/// identical to [`aa_odd_range`].
#[allow(clippy::too_many_arguments)]
fn aa_odd_range_vec<L: LayoutIdx, R: Real, V: Lane<R>>(
    mesh: &FluidMesh,
    omega: R,
    inlet_slot: &[u32],
    inlet_vel: &[[R; 3]],
    kinds: &KindLists,
    trav: &TraversalConfig,
    positions: std::ops::Range<usize>,
    f: &DisjointMut<'_, R>,
) {
    let n = mesh.len();
    let pf = trav.prefetch;
    let w = V::WIDTH;
    debug_assert!(w <= VEC_MAXW);
    for_each_block(positions, trav.block, |first, end| {
        let list = kinds.bulk.in_range(first, end);
        let mut i = 0;
        while i + w <= list.len() {
            let mut fin = [[R::ZERO; VEC_MAXW]; Q19];
            for lane in 0..w {
                if pf {
                    prefetch_aa_odd::<L, R>(mesh, f.as_ptr(), n, list, i + lane);
                }
                let g = gather_aa_odd::<L, R>(mesh, f, n, list[i + lane] as usize);
                for q in 0..Q19 {
                    fin[q][lane] = g[q];
                }
            }
            let rows = collide_bulk_group::<R, V>(&fin, omega);
            for lane in 0..w {
                let cell = list[i + lane] as usize;
                let mut out = [R::ZERO; Q19];
                for q in 0..Q19 {
                    out[q] = rows[q][lane];
                }
                scatter_aa_odd::<L, R>(mesh, f, n, cell, &out);
            }
            i += w;
        }
        for (j, &cell) in list.iter().enumerate().skip(i) {
            if pf {
                prefetch_aa_odd::<L, R>(mesh, f.as_ptr(), n, list, j);
            }
            let cell = cell as usize;
            let fin = gather_aa_odd::<L, R>(mesh, f, n, cell);
            scatter_aa_odd::<L, R>(mesh, f, n, cell, &bulk_out(&fin, omega));
        }
        for &cell in kinds.inlet.in_range(first, end) {
            let cell = cell as usize;
            let fin = gather_aa_odd::<L, R>(mesh, f, n, cell);
            scatter_aa_odd::<L, R>(
                mesh,
                f,
                n,
                cell,
                &inlet_out(&fin, inlet_vel[inlet_slot[cell] as usize]),
            );
        }
        for &cell in kinds.outlet.in_range(first, end) {
            let cell = cell as usize;
            let fin = gather_aa_odd::<L, R>(mesh, f, n, cell);
            scatter_aa_odd::<L, R>(mesh, f, n, cell, &outlet_out(&fin));
        }
    });
}

/// One AB step at element precision `R`, dispatching the resolved
/// execution strategy onto the owner-computes scheduler.
#[allow(clippy::too_many_arguments)]
fn run_ab<L: LayoutIdx, R: Real>(
    mesh: &FluidMesh,
    src: &[R],
    dst: &mut [R],
    omega: f64,
    inlet_slot: &[u32],
    inlet_vel: &[[R; 3]],
    kinds: &KindLists,
    trav: &TraversalConfig,
    exec: ExecKind,
    workers: usize,
) {
    let n = mesh.len();
    let om = R::from_f64(omega);
    match exec {
        ExecKind::Scalar => dispatch_owner(trav, dst, n, workers, |cells, out| {
            ab_update_range::<L, R>(mesh, src, om, inlet_slot, inlet_vel, kinds, trav, cells, out)
        }),
        ExecKind::VectorWide => dispatch_owner(trav, dst, n, workers, |cells, out| {
            ab_update_range_vec::<L, R, R::Wide>(
                mesh, src, om, inlet_slot, inlet_vel, kinds, trav, cells, out,
            )
        }),
        ExecKind::VectorAccel => dispatch_owner(trav, dst, n, workers, |cells, out| {
            ab_update_range_vec::<L, R, R::Accel>(
                mesh, src, om, inlet_slot, inlet_vel, kinds, trav, cells, out,
            )
        }),
    }
}

/// One AA step (either parity) at element precision `R`, dispatching
/// the resolved execution strategy onto the owner-computes scheduler.
#[allow(clippy::too_many_arguments)]
fn run_aa<L: LayoutIdx, R: Real>(
    mesh: &FluidMesh,
    f: &mut [R],
    even: bool,
    omega: f64,
    inlet_slot: &[u32],
    inlet_vel: &[[R; 3]],
    kinds: &KindLists,
    trav: &TraversalConfig,
    exec: ExecKind,
    workers: usize,
) {
    let n = mesh.len();
    let om = R::from_f64(omega);
    match exec {
        ExecKind::Scalar => dispatch_owner(trav, f, n, workers, |cells, f| {
            if even {
                aa_even_range::<L, R>(mesh, om, inlet_slot, inlet_vel, kinds, trav, cells, f);
            } else {
                aa_odd_range::<L, R>(mesh, om, inlet_slot, inlet_vel, kinds, trav, cells, f);
            }
        }),
        ExecKind::VectorWide => dispatch_owner(trav, f, n, workers, |cells, f| {
            if even {
                aa_even_range_vec::<L, R, R::Wide>(
                    mesh, om, inlet_slot, inlet_vel, kinds, trav, cells, f,
                );
            } else {
                aa_odd_range_vec::<L, R, R::Wide>(
                    mesh, om, inlet_slot, inlet_vel, kinds, trav, cells, f,
                );
            }
        }),
        ExecKind::VectorAccel => dispatch_owner(trav, f, n, workers, |cells, f| {
            if even {
                aa_even_range_vec::<L, R, R::Accel>(
                    mesh, om, inlet_slot, inlet_vel, kinds, trav, cells, f,
                );
            } else {
                aa_odd_range_vec::<L, R, R::Accel>(
                    mesh, om, inlet_slot, inlet_vel, kinds, trav, cells, f,
                );
            }
        }),
    }
}

impl Solver {
    /// The mesh being simulated.
    pub fn mesh(&self) -> &FluidMesh {
        &self.mesh
    }

    /// Solver configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Number of timesteps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.steps_taken
    }

    /// Whether the distributions are currently in natural storage order:
    /// always for AB; for AA only after an even number of steps (mid-pair
    /// the array holds the rotated even-step state).
    pub fn in_natural_order(&self) -> bool {
        match self.config.kernel.propagation {
            Propagation::Ab => true,
            Propagation::Aa => self.steps_taken.is_multiple_of(2),
        }
    }

    /// Bytes resident in distribution arrays (`f` plus `f_tmp` when the
    /// propagation pattern allocates it), at the configured storage
    /// precision. AA configs hold exactly one array — the "halved solver
    /// memory" the per-task accounting in
    /// `hemocloud_decomp::halo::resident_bytes_per_task` prices.
    pub fn distribution_bytes(&self) -> usize {
        self.store.len() * self.config.kernel.precision.bytes()
    }

    /// The instruction path the hot loops execute: `"scalar"`,
    /// `"scalar-lanes"` (vector structure on the portable array lanes),
    /// or `"avx2"`. Benchmark provenance records this per row.
    pub fn simd_label(&self) -> &'static str {
        self.exec.label()
    }

    /// The calibration sweep report, when this solver was built with
    /// [`KernelSelect::Auto`].
    pub fn autotune_report(&self) -> Option<&AutotuneReport> {
        self.autotune.as_ref()
    }

    fn step_ab<L: LayoutIdx>(&mut self, workers: usize) {
        let mesh = &self.mesh;
        let omega = self.omega;
        let inlet_slot = &self.inlet_slot;
        let kinds = &self.kinds;
        let trav = self.config.traversal;
        let exec = self.exec;
        match &mut self.store {
            Store::F64 { f, f_tmp } => {
                run_ab::<L, f64>(
                    mesh,
                    f,
                    f_tmp,
                    omega,
                    inlet_slot,
                    &self.inlet_vel,
                    kinds,
                    &trav,
                    exec,
                    workers,
                );
                std::mem::swap(f, f_tmp);
            }
            Store::F32 { f, f_tmp } => {
                run_ab::<L, f32>(
                    mesh,
                    f,
                    f_tmp,
                    omega,
                    inlet_slot,
                    &self.inlet_vel_f32,
                    kinds,
                    &trav,
                    exec,
                    workers,
                );
                std::mem::swap(f, f_tmp);
            }
        }
    }

    fn step_aa<L: LayoutIdx>(&mut self, workers: usize) {
        let even = self.steps_taken.is_multiple_of(2);
        let mesh = &self.mesh;
        let omega = self.omega;
        let inlet_slot = &self.inlet_slot;
        let kinds = &self.kinds;
        let trav = self.config.traversal;
        let exec = self.exec;
        match &mut self.store {
            Store::F64 { f, .. } => run_aa::<L, f64>(
                mesh,
                f,
                even,
                omega,
                inlet_slot,
                &self.inlet_vel,
                kinds,
                &trav,
                exec,
                workers,
            ),
            Store::F32 { f, .. } => run_aa::<L, f32>(
                mesh,
                f,
                even,
                omega,
                inlet_slot,
                &self.inlet_vel_f32,
                kinds,
                &trav,
                exec,
                workers,
            ),
        }
    }

    /// Advance one timestep.
    pub fn step(&mut self) {
        let workers = if self.config.parallel && self.mesh.len() >= self.config.parallel_threshold
        {
            pool::global().threads()
        } else {
            1
        };
        self.step_with_workers(workers);
    }

    /// Advance one timestep with an explicit logical worker count (≥ 1).
    /// Results are bit-identical for every count — the partition of the
    /// cell range never reorders any cell's arithmetic — so equivalence
    /// tests can pin the schedule without a host-width pool.
    pub fn step_with_workers(&mut self, workers: usize) {
        let start = std::time::Instant::now();
        match (self.config.kernel.propagation, self.config.kernel.layout) {
            (Propagation::Ab, Layout::Aos) => self.step_ab::<AosIdx>(workers),
            (Propagation::Ab, Layout::Soa) => self.step_ab::<SoaIdx>(workers),
            (Propagation::Aa, Layout::Aos) => self.step_aa::<AosIdx>(workers),
            (Propagation::Aa, Layout::Soa) => self.step_aa::<SoaIdx>(workers),
        }
        self.steps_taken += 1;
        self.obs.record_step(&self.kinds, start.elapsed().as_secs_f64());
    }

    /// Run `steps` timesteps and report throughput.
    pub fn run(&mut self, steps: u64) -> RunStats {
        let start = std::time::Instant::now();
        for _ in 0..steps {
            self.step();
        }
        let seconds = start.elapsed().as_secs_f64();
        let updates = steps * self.mesh.len() as u64;
        RunStats {
            updates,
            seconds,
            mflups: if seconds > 0.0 {
                updates as f64 / seconds / 1e6
            } else {
                0.0
            },
        }
    }

    /// Density and velocity at a fluid cell.
    ///
    /// # Panics
    /// Panics when an AA state is mid-pair (odd step count): the rotated
    /// in-place storage is only readable in natural order.
    pub fn macroscopics(&self, cell: usize) -> (f64, f64, f64, f64) {
        assert!(
            self.in_natural_order(),
            "AA state is only readable after an even number of steps"
        );
        let n = self.mesh.len();
        let layout = self.config.kernel.layout;
        let mut row = [0.0f64; Q19];
        match &self.store {
            Store::F64 { f, .. } => {
                for (q, v) in row.iter_mut().enumerate() {
                    *v = f[flat_index(layout, cell, q, n)];
                }
            }
            Store::F32 { f, .. } => {
                // Widen the stored f32 row once; the moment arithmetic then
                // runs in f64 so readout roundoff never stacks on storage
                // roundoff.
                for (q, v) in row.iter_mut().enumerate() {
                    *v = f[flat_index(layout, cell, q, n)] as f64;
                }
            }
        }
        macroscopics_d3q19(&row)
    }

    /// Density and velocity of the *post-stream* state at a cell: moments
    /// of the gathered (streamed, pre-collision) distributions, without
    /// advancing the simulation. Only meaningful for AB configs.
    ///
    /// This exists for the AA/AB equivalence check, mirroring
    /// [`crate::proxy::ProxyApp::post_stream_macroscopics`]: from the
    /// stream-invariant rest start, the AA array after an even number of
    /// steps equals the AB array with one extra streaming applied
    /// (`AA_2k = S(AB_2k)`), so AA's natural-order moments must match
    /// AB's post-stream moments exactly.
    ///
    /// # Panics
    /// Panics for AA configs.
    pub fn post_stream_macroscopics(&self, cell: usize) -> (f64, f64, f64, f64) {
        assert!(
            matches!(self.config.kernel.propagation, Propagation::Ab),
            "post-stream readout is defined for AB configs"
        );
        let n = self.mesh.len();
        let layout = self.config.kernel.layout;
        let fin = match &self.store {
            Store::F64 { f, .. } => widen_gather(&self.mesh, f, layout, cell, n),
            Store::F32 { f, .. } => widen_gather(&self.mesh, f, layout, cell, n),
        };
        macroscopics_d3q19(&fin)
    }

    /// Total mass (sum of densities over all cells).
    pub fn total_mass(&self) -> f64 {
        (0..self.mesh.len()).map(|c| self.macroscopics(c).0).sum()
    }

    /// Maximum velocity magnitude over all cells.
    pub fn max_velocity(&self) -> f64 {
        (0..self.mesh.len())
            .map(|c| {
                let (_, ux, uy, uz) = self.macroscopics(c);
                (ux * ux + uy * uy + uz * uz).sqrt()
            })
            .fold(0.0, f64::max)
    }

    /// Raw distribution access for checkpoint/equivalence tests (storage
    /// order: the configured layout; natural direction order only when
    /// [`Solver::in_natural_order`]).
    ///
    /// # Panics
    /// Panics for [`Precision::Single`] solvers — use
    /// [`Solver::distributions_f32`].
    pub fn distributions(&self) -> &[f64] {
        match &self.store {
            Store::F64 { f, .. } => f,
            Store::F32 { .. } => {
                panic!("distributions() is f64; this solver stores f32 — use distributions_f32()")
            }
        }
    }

    /// Raw f32 distribution access — the [`Precision::Single`] counterpart
    /// of [`Solver::distributions`].
    ///
    /// # Panics
    /// Panics for f64 solvers.
    pub fn distributions_f32(&self) -> &[f32] {
        match &self.store {
            Store::F32 { f, .. } => f,
            Store::F64 { .. } => {
                panic!("distributions_f32() is f32; this solver stores f64 — use distributions()")
            }
        }
    }

    /// Add `delta` to the rest population of the first fluid cell — a
    /// local mass/pressure perturbation, useful for conservation tests and
    /// relaxation demos. (The rest population of cell 0 is flat index 0 in
    /// both layouts; for AA the state must be in natural order.)
    pub fn bump_first_cell(&mut self, delta: f64) {
        assert!(
            self.in_natural_order(),
            "AA state is only writable after an even number of steps"
        );
        match &mut self.store {
            Store::F64 { f, .. } => f[0] += delta,
            Store::F32 { f, .. } => f[0] += delta as f32,
        }
    }
}

/// Post-stream gather of one cell's row, widened to f64 for readout.
fn widen_gather<R: Real>(
    mesh: &FluidMesh,
    f: &[R],
    layout: Layout,
    cell: usize,
    n: usize,
) -> [f64; Q19] {
    let row = mesh.neighbor_row(cell);
    let mut fin = [0.0f64; Q19];
    for (q, v) in fin.iter_mut().enumerate() {
        let nb = row[opposite(q)];
        *v = if nb == SOLID {
            f[flat_index(layout, cell, opposite(q), n)]
        } else {
            f[flat_index(layout, nb as usize, q, n)]
        }
        .to_f64();
    }
    fin
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemocloud_geometry::anatomy::CylinderSpec;
    use hemocloud_geometry::classify::classify_walls;
    use hemocloud_geometry::voxel::VoxelGrid;
    use hemocloud_rt::check::{self, Config};

    fn closed_box_solver() -> Solver {
        // A sealed box: no inlets/outlets, so mass is exactly conserved.
        let mut g = VoxelGrid::filled(6, 6, 6, 1.0, CellType::Bulk);
        classify_walls(&mut g);
        Solver::new(FluidMesh::build(&g), SolverConfig::default())
    }

    fn cylinder_mesh() -> FluidMesh {
        let g = CylinderSpec::default()
            .with_dimensions(3.0, 12.0)
            .with_resolution(8)
            .build();
        FluidMesh::build(&g)
    }

    fn config_for(kernel: KernelConfig) -> SolverConfig {
        SolverConfig {
            parallel: false,
            kernel,
            ..Default::default()
        }
    }

    #[test]
    fn equilibrium_rest_state_is_stationary() {
        let mut s = closed_box_solver();
        let before = s.distributions().to_vec();
        for _ in 0..5 {
            s.step();
        }
        for (a, b) in before.iter().zip(s.distributions()) {
            assert!((a - b).abs() < 1e-14, "rest state drifted: {a} vs {b}");
        }
    }

    #[test]
    fn rest_state_is_stationary_for_every_kernel_config() {
        let mut g = VoxelGrid::filled(6, 6, 6, 1.0, CellType::Bulk);
        classify_walls(&mut g);
        let mesh = FluidMesh::build(&g);
        for prop in [Propagation::Ab, Propagation::Aa] {
            for layout in [Layout::Aos, Layout::Soa] {
                let mut s = Solver::new(
                    mesh.clone(),
                    config_for(KernelConfig::sparse(prop, layout)),
                );
                for _ in 0..4 {
                    s.step();
                }
                for cell in 0..s.mesh().len() {
                    let (rho, ux, uy, uz) = s.macroscopics(cell);
                    assert!((rho - 1.0).abs() < 1e-13, "{prop:?}/{layout:?}");
                    assert!(ux.abs() < 1e-13 && uy.abs() < 1e-13 && uz.abs() < 1e-13);
                }
            }
        }
    }

    #[test]
    fn closed_box_conserves_mass() {
        let mut s = closed_box_solver();
        // Perturb through the public API: bump one cell's rest population.
        s.bump_first_cell(0.01);
        let m0 = s.total_mass();
        for _ in 0..50 {
            s.step();
        }
        let m1 = s.total_mass();
        assert!(
            (m0 - m1).abs() < 1e-9 * m0,
            "mass drifted: {m0} -> {m1}"
        );
    }

    #[test]
    fn aa_closed_box_conserves_mass() {
        let mut g = VoxelGrid::filled(6, 6, 6, 1.0, CellType::Bulk);
        classify_walls(&mut g);
        let mut s = Solver::new(
            FluidMesh::build(&g),
            config_for(KernelConfig::sparse(Propagation::Aa, Layout::Aos)),
        );
        s.bump_first_cell(0.01);
        let m0 = s.total_mass();
        for _ in 0..50 {
            s.step();
        }
        let m1 = s.total_mass();
        assert!((m0 - m1).abs() < 1e-9 * m0, "mass drifted: {m0} -> {m1}");
    }

    #[test]
    fn bump_first_cell_touches_only_the_rest_population() {
        let mut s = closed_box_solver();
        let before = s.distributions().to_vec();
        let (rho0, ux0, uy0, uz0) = s.macroscopics(0);
        s.bump_first_cell(0.01);
        let after = s.distributions();
        // Exactly one entry changed: the rest population (q = 0) of cell 0.
        assert_eq!(after[0], before[0] + 0.01);
        for (i, (a, b)) in after.iter().zip(&before).enumerate().skip(1) {
            assert_eq!(a, b, "entry {i} changed");
        }
        // The rest direction carries no momentum: density rises, velocity
        // momentum is untouched (velocity = momentum / density).
        let (rho1, ux1, uy1, uz1) = s.macroscopics(0);
        assert_eq!(rho1, rho0 + 0.01);
        assert_eq!(ux1 * rho1, ux0 * rho0);
        assert_eq!(uy1 * rho1, uy0 * rho0);
        assert_eq!(uz1 * rho1, uz0 * rho0);
    }

    #[test]
    fn perturbation_decays_in_closed_box() {
        let mut s = closed_box_solver();
        s.bump_first_cell(0.01);
        for _ in 0..300 {
            s.step();
        }
        // Viscous dissipation returns the box to (a) rest.
        assert!(s.max_velocity() < 1e-4, "v = {}", s.max_velocity());
    }

    #[test]
    fn cylinder_flow_develops_and_stays_stable() {
        let g = CylinderSpec::default()
            .with_dimensions(3.0, 15.0)
            .with_resolution(8)
            .build();
        let mut s = Solver::new(FluidMesh::build(&g), SolverConfig::default());
        for _ in 0..200 {
            s.step();
        }
        let vmax = s.max_velocity();
        assert!(vmax > 0.2 * s.config.u_max, "flow failed to develop: {vmax}");
        assert!(vmax < 3.0 * s.config.u_max, "flow blew up: {vmax}");
        assert!(s.distributions().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn parallel_and_serial_agree_bitwise() {
        // parallel_threshold: 0 forces the threaded path on this small
        // cylinder, so the test genuinely compares the two schedules.
        let mesh = cylinder_mesh();
        let mut a = Solver::new(
            mesh.clone(),
            SolverConfig {
                parallel: false,
                ..Default::default()
            },
        );
        let mut b = Solver::new(
            mesh,
            SolverConfig {
                parallel: true,
                parallel_threshold: 0,
                ..Default::default()
            },
        );
        for _ in 0..20 {
            a.step();
            b.step();
        }
        for (x, y) in a.distributions().iter().zip(b.distributions()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise_for_every_kernel_config() {
        // The acceptance bar for the owner-computes primitive: AA (both
        // layouts) and AB/SoA must be bit-identical to serial at 1, 2, 3,
        // and 8 logical workers — including mid-pair (odd) AA states.
        let mesh = cylinder_mesh();
        for prop in [Propagation::Ab, Propagation::Aa] {
            for layout in [Layout::Aos, Layout::Soa] {
                let kernel = KernelConfig::sparse(prop, layout);
                let mut reference = Solver::new(mesh.clone(), config_for(kernel));
                for _ in 0..21 {
                    reference.step_with_workers(1);
                }
                for workers in [1usize, 2, 3, 8] {
                    let mut s = Solver::new(mesh.clone(), config_for(kernel));
                    for _ in 0..21 {
                        s.step_with_workers(workers);
                    }
                    for (a, b) in reference.distributions().iter().zip(s.distributions()) {
                        assert_eq!(a, b, "{prop:?}/{layout:?} diverged at {workers} workers");
                    }
                }
            }
        }
    }

    #[test]
    fn aa_moments_match_ab_post_stream_on_the_sparse_mesh() {
        // The sparse-mesh twin of the proxy's AA/AB equivalence: from the
        // shared rest start, after an even number of steps the AA state is
        // the AB state with one extra streaming applied, at every fluid
        // cell (bulk, wall, inlet, and outlet alike).
        let mesh = cylinder_mesh();
        let mut ab = Solver::new(mesh.clone(), config_for(KernelConfig::harvey()));
        for _ in 0..24 {
            ab.step();
        }
        for layout in [Layout::Aos, Layout::Soa] {
            let mut aa = Solver::new(
                mesh.clone(),
                config_for(KernelConfig::sparse(Propagation::Aa, layout)),
            );
            for _ in 0..24 {
                aa.step();
            }
            assert!(aa.in_natural_order());
            for cell in 0..mesh.len() {
                let (r0, x0, y0, z0) = ab.post_stream_macroscopics(cell);
                let (r1, x1, y1, z1) = aa.macroscopics(cell);
                assert!(
                    (r0 - r1).abs() < 1e-12
                        && (x0 - x1).abs() < 1e-12
                        && (y0 - y1).abs() < 1e-12
                        && (z0 - z1).abs() < 1e-12,
                    "AA/{layout:?} diverged at cell {cell}: rho {r0} vs {r1}"
                );
            }
        }
    }

    #[test]
    fn soa_matches_aos_macroscopics_exactly() {
        // Layout is pure storage: identical arithmetic per cell, so the
        // moments agree bitwise for both propagation patterns.
        let mesh = cylinder_mesh();
        for prop in [Propagation::Ab, Propagation::Aa] {
            let mut aos = Solver::new(
                mesh.clone(),
                config_for(KernelConfig::sparse(prop, Layout::Aos)),
            );
            let mut soa = Solver::new(
                mesh.clone(),
                config_for(KernelConfig::sparse(prop, Layout::Soa)),
            );
            for _ in 0..10 {
                aos.step();
                soa.step();
            }
            for cell in 0..mesh.len() {
                assert_eq!(aos.macroscopics(cell), soa.macroscopics(cell), "{prop:?}");
            }
        }
    }

    #[test]
    fn aa_never_allocates_the_scratch_array() {
        let mesh = cylinder_mesh();
        let n = mesh.len();
        let mut aa = Solver::new(
            mesh.clone(),
            config_for(KernelConfig::sparse(Propagation::Aa, Layout::Aos)),
        );
        let mut ab = Solver::new(mesh, config_for(KernelConfig::harvey()));
        for _ in 0..6 {
            aa.step();
            ab.step();
        }
        assert_eq!(aa.distribution_bytes(), n * Q19 * 8, "AA must hold one array");
        assert_eq!(ab.distribution_bytes(), 2 * n * Q19 * 8);
        assert_eq!(aa.distribution_bytes() * 2, ab.distribution_bytes());
    }

    #[test]
    fn aa_state_unreadable_mid_pair() {
        let mut s = Solver::new(
            cylinder_mesh(),
            config_for(KernelConfig::sparse(Propagation::Aa, Layout::Aos)),
        );
        s.step();
        assert!(!s.in_natural_order());
        s.step();
        assert!(s.in_natural_order());
    }

    #[test]
    fn stepping_never_spawns_threads_beyond_the_pool() {
        // The motivating bug for the pool: `step()` used to spawn and
        // join fresh OS threads on every call. Now thread spawns are
        // bounded by the pool's fixed complement for an entire run.
        let pool = hemocloud_rt::pool::global();
        let spawned_before = pool.spawned_threads();
        assert!(
            spawned_before < pool.threads(),
            "pool spawns are bounded by its width minus the caller"
        );
        let g = CylinderSpec::default()
            .with_dimensions(3.0, 12.0)
            .with_resolution(8)
            .build();
        for kernel in [
            KernelConfig::harvey(),
            KernelConfig::sparse(Propagation::Aa, Layout::Soa),
        ] {
            let mut s = Solver::new(
                FluidMesh::build(&g),
                SolverConfig {
                    parallel: true,
                    parallel_threshold: 0,
                    kernel,
                    ..Default::default()
                },
            );
            for _ in 0..100 {
                s.step();
            }
            assert!(s.distributions().iter().all(|v| v.is_finite()));
        }
        assert_eq!(
            pool.spawned_threads(),
            spawned_before,
            "200 steps must not spawn a single extra OS thread"
        );
    }

    #[test]
    fn inlet_profile_is_parabolic() {
        let g = CylinderSpec::default()
            .with_dimensions(4.0, 12.0)
            .with_resolution(12)
            .build();
        let mesh = FluidMesh::build(&g);
        let s = Solver::new(mesh, SolverConfig::default());
        // Peak prescribed velocity is near u_max, edge velocities near 0.
        let peak = s
            .inlet_vel
            .iter()
            .map(|v| (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]).sqrt())
            .fold(0.0f64, f64::max);
        assert!(peak > 0.8 * s.config.u_max, "peak = {peak}");
        assert!(peak <= s.config.u_max + 1e-12);
    }

    #[test]
    #[should_panic(expected = "tau must exceed")]
    fn unstable_tau_rejected() {
        let mut g = VoxelGrid::filled(4, 4, 4, 1.0, CellType::Bulk);
        classify_walls(&mut g);
        let _ = Solver::new(
            FluidMesh::build(&g),
            SolverConfig {
                tau: 0.4,
                ..Default::default()
            },
        );
    }

    // ---- KindList::in_range --------------------------------------------

    /// A kind list under the natural traversal: positions equal cell ids.
    fn identity_list(cells: &[u32]) -> KindList {
        KindList {
            cells: cells.to_vec(),
            pos: cells.to_vec(),
        }
    }

    #[test]
    fn in_range_of_empty_list_is_empty() {
        let empty = identity_list(&[]);
        assert!(empty.in_range(0, 0).is_empty());
        assert!(empty.in_range(0, 100).is_empty());
        assert!(empty.in_range(50, 60).is_empty());
    }

    #[test]
    fn in_range_splits_a_list_at_interior_boundaries() {
        let list = identity_list(&[2, 5, 9]);
        assert_eq!(list.in_range(0, 3), &[2]);
        assert_eq!(list.in_range(3, 9), &[5]);
        assert_eq!(list.in_range(9, 10), &[9]);
        assert_eq!(list.in_range(0, 10), &[2, 5, 9]);
        assert_eq!(list.in_range(5, 6), &[5]);
        assert_eq!(list.in_range(6, 9), &[] as &[u32]);
    }

    #[test]
    fn in_range_with_first_equal_to_end_is_empty() {
        let list = identity_list(&[2, 5, 9]);
        for at in 0..11 {
            assert!(list.in_range(at, at).is_empty(), "[{at}, {at}) must be empty");
        }
    }

    #[test]
    fn in_range_slices_by_position_not_cell_id() {
        // A permuted traversal: positions ascend while cell ids do not —
        // in_range must cut by position and return cells in visit order.
        let list = KindList {
            cells: vec![9, 2, 5],
            pos: vec![1, 4, 6],
        };
        assert_eq!(list.in_range(0, 2), &[9]);
        assert_eq!(list.in_range(2, 5), &[2]);
        assert_eq!(list.in_range(0, 7), &[9, 2, 5]);
        assert_eq!(list.in_range(5, 100), &[5]);
    }

    #[test]
    fn in_range_subranges_partition_each_kind_list_exactly() {
        // Property: for any random kind partition of 0..n, any random
        // traversal permutation, and any random chunk partition of the
        // position range, concatenating the per-chunk sub-ranges
        // reproduces each kind list exactly — the invariant the parallel
        // sweep relies on for full, duplicate-free coverage.
        check::run(
            "in_range_subranges_partition_each_kind_list_exactly",
            Config::cases(32),
            |rng| {
                let n = rng.range_usize(1, 400);
                // A random permutation as the traversal order.
                let mut order: Vec<u32> = (0..n as u32).collect();
                for p in (1..n).rev() {
                    order.swap(p, rng.range_usize(0, p + 1));
                }
                let mut lists = [(); 3].map(|_| KindList {
                    cells: Vec::new(),
                    pos: Vec::new(),
                });
                for (p, &cell) in order.iter().enumerate() {
                    let k = rng.range_usize(0, 3);
                    lists[k].cells.push(cell);
                    lists[k].pos.push(p as u32);
                }
                // Random ascending chunk boundaries over [0, n].
                let mut cuts = vec![0usize, n];
                for _ in 0..rng.range_usize(0, 8) {
                    cuts.push(rng.range_usize(0, n + 1));
                }
                cuts.sort_unstable();
                for list in &lists {
                    let mut rebuilt = Vec::new();
                    for pair in cuts.windows(2) {
                        rebuilt.extend_from_slice(list.in_range(pair[0], pair[1]));
                    }
                    assert_eq!(rebuilt, list.cells, "chunked sub-ranges lost or duplicated cells");
                }
            },
        );
    }

    // ---- traversal-permutation oracle ----------------------------------

    #[test]
    fn kind_lists_under_permuted_order_cover_the_mesh_in_visit_order() {
        let mesh = cylinder_mesh();
        let order = crate::traversal::permutation(&mesh, crate::traversal::TraversalOrder::Morton);
        let kinds = KindLists::build(&mesh, &order);
        assert_eq!(
            kinds.bulk.len() + kinds.inlet.len() + kinds.outlet.len(),
            mesh.len()
        );
        // Reassembling the three lists by position reproduces the order.
        let mut by_pos = vec![u32::MAX; mesh.len()];
        for list in [&kinds.bulk, &kinds.inlet, &kinds.outlet] {
            for (&cell, &p) in list.cells.iter().zip(&list.pos) {
                assert_eq!(by_pos[p as usize], u32::MAX, "position {p} claimed twice");
                by_pos[p as usize] = cell;
            }
        }
        assert_eq!(by_pos, order);
    }

    #[test]
    fn every_traversal_config_is_bitwise_identical_to_the_default_order() {
        // The oracle the tentpole rests on: traversal order, cache
        // blocking, prefetch, and the stealing schedule are all
        // bit-neutral, for every kernel config, at logical worker counts
        // 1/2/3/8, with stealing on and off. `steal_chunk: 16` forces
        // many chunks per worker so the stealing machinery genuinely
        // engages on this small mesh.
        let mesh = cylinder_mesh();
        let traversals = [
            TraversalConfig::natural(),
            TraversalConfig::morton(),
            TraversalConfig {
                block: 64,
                prefetch: true,
                ..TraversalConfig::natural()
            },
            TraversalConfig {
                stealing: true,
                steal_chunk: 16,
                ..TraversalConfig::natural()
            },
            TraversalConfig {
                steal_chunk: 16,
                ..TraversalConfig::tuned()
            },
        ];
        for prop in [Propagation::Ab, Propagation::Aa] {
            for layout in [Layout::Aos, Layout::Soa] {
                let kernel = KernelConfig::sparse(prop, layout);
                let mut reference = Solver::new(mesh.clone(), config_for(kernel));
                for _ in 0..13 {
                    reference.step_with_workers(1);
                }
                for trav in traversals {
                    for workers in [1usize, 2, 3, 8] {
                        let mut s = Solver::new(
                            mesh.clone(),
                            SolverConfig {
                                traversal: trav,
                                ..config_for(kernel)
                            },
                        );
                        for _ in 0..13 {
                            s.step_with_workers(workers);
                        }
                        assert_eq!(
                            reference.distributions(),
                            s.distributions(),
                            "{prop:?}/{layout:?} diverged under {} at {workers} workers",
                            trav.name()
                        );
                    }
                }
            }
        }
    }

    // ---- explicit-vectorization oracles --------------------------------

    #[test]
    fn vector_path_is_bitwise_identical_to_scalar_for_every_kernel_config() {
        // The tentpole's acceptance oracle: the fused vector collide-stream
        // must reproduce the scalar kernel bit for bit, for every
        // propagation × layout, across traversals and worker counts —
        // including mid-pair (odd) AA states, hence 13 steps.
        let mesh = cylinder_mesh();
        for prop in [Propagation::Ab, Propagation::Aa] {
            for layout in [Layout::Aos, Layout::Soa] {
                let kernel = KernelConfig::sparse(prop, layout);
                let mut scalar = Solver::new(
                    mesh.clone(),
                    SolverConfig {
                        simd: SimdPath::Scalar,
                        ..config_for(kernel)
                    },
                );
                for _ in 0..13 {
                    scalar.step_with_workers(1);
                }
                for trav in [TraversalConfig::natural(), TraversalConfig::tuned()] {
                    for workers in [1usize, 2, 8] {
                        let mut v = Solver::new(
                            mesh.clone(),
                            SolverConfig {
                                simd: SimdPath::Vector,
                                traversal: trav,
                                ..config_for(kernel)
                            },
                        );
                        for _ in 0..13 {
                            v.step_with_workers(workers);
                        }
                        assert_eq!(
                            scalar.distributions(),
                            v.distributions(),
                            "{prop:?}/{layout:?} vector diverged under {} at {workers} workers",
                            trav.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn vector_remainder_lanes_match_scalar_on_awkward_mesh_sizes() {
        // Meshes whose bulk lists are not multiples of the lane width (4
        // for f64, 8 for f32 on AVX2) exercise the scalar remainder loop
        // after every lane group. Perturb so the fields are not at rest.
        for (nx, ny, nz) in [(3usize, 3, 3), (4, 3, 5), (5, 5, 2), (6, 5, 4)] {
            let mut g = VoxelGrid::filled(nx, ny, nz, 1.0, CellType::Bulk);
            classify_walls(&mut g);
            let mesh = FluidMesh::build(&g);
            for prop in [Propagation::Ab, Propagation::Aa] {
                let kernel = KernelConfig::sparse(prop, Layout::Soa);
                let mut scalar = Solver::new(
                    mesh.clone(),
                    SolverConfig {
                        simd: SimdPath::Scalar,
                        ..config_for(kernel)
                    },
                );
                let mut vector = Solver::new(mesh.clone(), config_for(kernel));
                scalar.bump_first_cell(0.01);
                vector.bump_first_cell(0.01);
                for _ in 0..6 {
                    scalar.step();
                    vector.step();
                }
                assert_eq!(
                    scalar.distributions(),
                    vector.distributions(),
                    "{prop:?} remainder diverged on {nx}x{ny}x{nz}"
                );
            }
        }
    }

    #[test]
    fn f32_vector_path_is_bitwise_identical_to_f32_scalar() {
        // Same oracle at single precision: 8 f32 lanes per AVX2 vector,
        // same lane-op-equals-scalar-op argument.
        let mesh = cylinder_mesh();
        for prop in [Propagation::Ab, Propagation::Aa] {
            for layout in [Layout::Aos, Layout::Soa] {
                let kernel = KernelConfig::sparse_with_precision(prop, layout, Precision::Single);
                let mut scalar = Solver::new(
                    mesh.clone(),
                    SolverConfig {
                        simd: SimdPath::Scalar,
                        ..config_for(kernel)
                    },
                );
                let mut vector = Solver::new(mesh.clone(), config_for(kernel));
                for _ in 0..13 {
                    scalar.step();
                    vector.step_with_workers(2);
                }
                assert_eq!(
                    scalar.distributions_f32(),
                    vector.distributions_f32(),
                    "{prop:?}/{layout:?} f32 vector diverged"
                );
            }
        }
    }

    #[test]
    fn f32_cylinder_flow_tracks_f64_within_tolerance() {
        // The accuracy oracle that pins Precision::Single: the developing
        // Poiseuille inlet flow at f32 storage must track the f64 solution
        // to single-precision roundoff accumulation, not just stay finite.
        let mesh = cylinder_mesh();
        let mut d = Solver::new(mesh.clone(), config_for(KernelConfig::harvey()));
        let mut s = Solver::new(
            mesh.clone(),
            config_for(KernelConfig::sparse_with_precision(
                Propagation::Ab,
                Layout::Soa,
                Precision::Single,
            )),
        );
        for _ in 0..100 {
            d.step();
            s.step();
        }
        let mut max_drho = 0.0f64;
        let mut max_du = 0.0f64;
        for cell in 0..mesh.len() {
            let (r64, x64, y64, z64) = d.macroscopics(cell);
            let (r32, x32, y32, z32) = s.macroscopics(cell);
            assert!(r32.is_finite() && x32.is_finite());
            max_drho = max_drho.max((r64 - r32).abs());
            max_du = max_du
                .max((x64 - x32).abs())
                .max((y64 - y32).abs())
                .max((z64 - z32).abs());
        }
        assert!(max_drho < 1e-3, "density drift {max_drho} exceeds budget");
        assert!(max_du < 1e-4, "velocity drift {max_du} exceeds budget");
        assert!(d.max_velocity() > 1e-3, "flow failed to develop");
    }

    #[test]
    fn single_precision_halves_distribution_bytes() {
        let mesh = cylinder_mesh();
        let n = mesh.len();
        for prop in [Propagation::Ab, Propagation::Aa] {
            let arrays = if matches!(prop, Propagation::Ab) { 2 } else { 1 };
            let f64b = Solver::new(
                mesh.clone(),
                config_for(KernelConfig::sparse(prop, Layout::Soa)),
            )
            .distribution_bytes();
            let f32b = Solver::new(
                mesh.clone(),
                config_for(KernelConfig::sparse_with_precision(
                    prop,
                    Layout::Soa,
                    Precision::Single,
                )),
            )
            .distribution_bytes();
            assert_eq!(f64b, arrays * n * Q19 * 8, "{prop:?} f64");
            assert_eq!(f32b, arrays * n * Q19 * 4, "{prop:?} f32");
            assert_eq!(f64b, 2 * f32b, "{prop:?} halving");
        }
    }

    #[test]
    fn autotune_picks_a_candidate_and_preserves_bits() {
        // KernelSelect::Auto may pick any simd × traversal combination —
        // all compute identical bits, so the tuned solver must match the
        // fixed scalar reference exactly, and the report must cover the
        // full sweep (2 simd paths × deduplicated traversal candidates).
        let mesh = cylinder_mesh();
        let reg = Registry::new();
        let mut auto = Solver::new_in(
            mesh.clone(),
            SolverConfig {
                select: KernelSelect::Auto,
                ..config_for(KernelConfig::harvey())
            },
            &reg,
        );
        let report = auto.autotune_report().expect("auto solver keeps a report");
        assert!(report.candidates.len() >= 4, "sweep too small");
        // The choice lands in the registry as a combo-keyed counter.
        let selected = format!(
            "lbm.autotune.selected.{}.{}",
            report.simd.label(),
            report.traversal.name()
        );
        assert_eq!(reg.snapshot().counter(&selected), Some(1));
        assert_eq!(auto.config().select, KernelSelect::Fixed);
        assert_eq!(auto.config().simd, report.simd);
        assert_eq!(auto.steps_taken(), 0, "calibration must not advance state");
        let mut fixed = Solver::new(
            mesh,
            SolverConfig {
                simd: SimdPath::Scalar,
                ..config_for(KernelConfig::harvey())
            },
        );
        for _ in 0..10 {
            auto.step();
            fixed.step();
        }
        assert_eq!(auto.distributions(), fixed.distributions());
    }

    #[test]
    #[should_panic(expected = "use distributions_f32()")]
    fn f64_readout_of_f32_storage_panics() {
        let mut g = VoxelGrid::filled(4, 4, 4, 1.0, CellType::Bulk);
        classify_walls(&mut g);
        let s = Solver::new(
            FluidMesh::build(&g),
            config_for(KernelConfig::sparse_with_precision(
                Propagation::Ab,
                Layout::Soa,
                Precision::Single,
            )),
        );
        let _ = s.distributions();
    }

    #[test]
    #[should_panic(expected = "use distributions()")]
    fn f32_readout_of_f64_storage_panics() {
        let s = closed_box_solver();
        let _ = s.distributions_f32();
    }

    #[test]
    #[should_panic(expected = "Quad precision is model-only")]
    fn quad_precision_storage_is_rejected() {
        let mut g = VoxelGrid::filled(4, 4, 4, 1.0, CellType::Bulk);
        classify_walls(&mut g);
        let _ = Solver::new(
            FluidMesh::build(&g),
            config_for(KernelConfig::sparse_with_precision(
                Propagation::Ab,
                Layout::Soa,
                Precision::Quad,
            )),
        );
    }
}

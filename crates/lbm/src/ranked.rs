//! Rank-decomposed execution with explicit halo exchange.
//!
//! HARVEY runs under MPI: the mesh is split among ranks, each rank updates
//! its own cells, and boundary distributions are exchanged every step. This
//! module reproduces that structure in-process: each rank owns a contiguous
//! range of fluid cells, remote reads go through per-step halo snapshots,
//! and the per-rank message ledger records exactly the bytes and events the
//! performance model costs (paper Eqs. 5, 13, 15).
//!
//! The ranked solver must produce the *same physics* as the global
//! [`crate::solver::Solver`]; the equivalence test at the bottom is the
//! core integration check between the LBM and decomposition machinery.

use crate::equilibrium::{equilibrium_d3q19, macroscopics_d3q19};
use crate::lattice::{opposite, Q19, W19};
use crate::mesh::{FluidMesh, SOLID};
use hemocloud_geometry::voxel::CellType;

/// Assignment of fluid cells to ranks: `owner[cell]` is the rank index.
#[derive(Debug, Clone)]
pub struct RankAssignment {
    /// Rank owning each fluid cell.
    pub owner: Vec<u32>,
    /// Number of ranks.
    pub n_ranks: usize,
}

impl RankAssignment {
    /// Validate and wrap an ownership vector.
    ///
    /// # Panics
    /// Panics if an owner index is out of range.
    pub fn new(owner: Vec<u32>, n_ranks: usize) -> Self {
        assert!(n_ranks > 0);
        assert!(
            owner.iter().all(|&r| (r as usize) < n_ranks),
            "owner index out of range"
        );
        Self { owner, n_ranks }
    }

    /// Cells owned by each rank.
    pub fn cells_per_rank(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_ranks];
        for &r in &self.owner {
            counts[r as usize] += 1;
        }
        counts
    }
}

/// Per-step communication ledger of one rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommLedger {
    /// Bytes sent to other ranks this step.
    pub bytes_sent: u64,
    /// Distinct (neighbor rank) messages sent this step.
    pub messages_sent: u64,
}

/// A rank-decomposed solver over a shared mesh.
///
/// Implementation note: distributions live in one global array (we are one
/// process), but every cross-rank read goes through `halo`, a snapshot of
/// boundary values taken during the exchange phase — so the information
/// flow is exactly MPI-like: a rank never observes another rank's
/// *current-step* writes.
pub struct RankedSolver {
    mesh: FluidMesh,
    assignment: RankAssignment,
    f: Vec<f64>,
    f_tmp: Vec<f64>,
    /// Snapshot of remote distributions needed by each rank, rebuilt each
    /// step: `halo[cell * 19 + q]` is valid only for cells in some rank's
    /// receive set.
    halo: Vec<f64>,
    /// For each rank, the list of (remote cell) indices it must receive
    /// before updating, grouped by sending rank for message accounting.
    recv_sets: Vec<Vec<(u32, Vec<u32>)>>,
    omega: f64,
    inlet_slot: Vec<u32>,
    inlet_vel: Vec<[f64; 3]>,
    /// Update cells on the shared worker pool (same gating as
    /// [`crate::solver::SolverConfig::parallel`]). Race-free: the update
    /// reads only `f` and the `halo` snapshot, both immutable during the
    /// sweep, and writes only the destination cell.
    parallel: bool,
    parallel_threshold: usize,
    steps_taken: u64,
    ledgers: Vec<CommLedger>,
}

impl RankedSolver {
    /// Build from a mesh, an ownership assignment, and the same physical
    /// configuration as [`crate::solver::SolverConfig`].
    pub fn new(
        mesh: FluidMesh,
        assignment: RankAssignment,
        config: crate::solver::SolverConfig,
    ) -> Self {
        assert_eq!(assignment.owner.len(), mesh.len(), "assignment size");
        assert!(config.tau > 0.5, "tau must exceed 1/2 for stability");
        let n = mesh.len();
        let mut f = vec![0.0; n * Q19];
        for cell in 0..n {
            for q in 0..Q19 {
                f[cell * Q19 + q] = W19[q];
            }
        }

        // Receive sets: for each rank, the remote cells read by its pull
        // updates, grouped by owner.
        let mut recv: Vec<std::collections::BTreeMap<u32, std::collections::BTreeSet<u32>>> =
            vec![Default::default(); assignment.n_ranks];
        for cell in 0..n {
            let me = assignment.owner[cell];
            for q in 0..Q19 {
                let nb = mesh.neighbor(cell, q);
                if nb != SOLID {
                    let owner = assignment.owner[nb as usize];
                    if owner != me {
                        recv[me as usize].entry(owner).or_default().insert(nb);
                    }
                }
            }
        }
        let recv_sets: Vec<Vec<(u32, Vec<u32>)>> = recv
            .into_iter()
            .map(|m| {
                m.into_iter()
                    .map(|(owner, cells)| (owner, cells.into_iter().collect()))
                    .collect()
            })
            .collect();

        // Identical inlet boundary data to the global solver.
        let (inlet_slot, inlet_vel) = crate::solver::poiseuille_profile_for(&mesh, &config);

        let ledgers = vec![CommLedger::default(); assignment.n_ranks];
        Self {
            f_tmp: f.clone(),
            halo: vec![0.0; n * Q19],
            f,
            mesh,
            assignment,
            recv_sets,
            omega: 1.0 / config.tau,
            inlet_slot,
            inlet_vel,
            parallel: config.parallel,
            parallel_threshold: config.parallel_threshold,
            steps_taken: 0,
            ledgers,
        }
    }

    /// Exchange phase: snapshot every boundary distribution into `halo` and
    /// charge each sending rank's ledger.
    fn exchange(&mut self) {
        for ledger in &mut self.ledgers {
            ledger.bytes_sent = 0;
            ledger.messages_sent = 0;
        }
        for (rank, groups) in self.recv_sets.iter().enumerate() {
            let _ = rank;
            for (sender, cells) in groups {
                let mut bytes = 0u64;
                for &cell in cells {
                    let base = cell as usize * Q19;
                    self.halo[base..base + Q19].copy_from_slice(&self.f[base..base + Q19]);
                    bytes += (Q19 * std::mem::size_of::<f64>()) as u64;
                }
                let ledger = &mut self.ledgers[*sender as usize];
                ledger.bytes_sent += bytes;
                ledger.messages_sent += 1;
            }
        }
    }

    /// One pull-scheme update for destination cell `cell`, reading remote
    /// neighbors only from the halo snapshot. Pure in its inputs, so the
    /// serial and pool-parallel sweeps are bit-identical.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn update_cell(
        mesh: &FluidMesh,
        owner: &[u32],
        src: &[f64],
        halo: &[f64],
        omega: f64,
        inlet_slot: &[u32],
        inlet_vel: &[[f64; 3]],
        cell: usize,
        out: &mut [f64],
    ) {
        let me = owner[cell];
        let mut fin = [0.0f64; Q19];
        let row = mesh.neighbor_row(cell);
        for q in 0..Q19 {
            let nb = row[opposite(q)];
            fin[q] = if nb == SOLID {
                src[cell * Q19 + opposite(q)]
            } else if owner[nb as usize] != me {
                halo[nb as usize * Q19 + q]
            } else {
                src[nb as usize * Q19 + q]
            };
        }
        let (rho, ux, uy, uz) = macroscopics_d3q19(&fin);
        let mut feq = [0.0f64; Q19];
        match mesh.cell_type(cell) {
            CellType::Inlet => {
                let v = inlet_vel[inlet_slot[cell] as usize];
                equilibrium_d3q19(rho, v[0], v[1], v[2], &mut feq);
                out[..Q19].copy_from_slice(&feq);
            }
            CellType::Outlet => {
                equilibrium_d3q19(1.0, ux, uy, uz, &mut feq);
                out[..Q19].copy_from_slice(&feq);
            }
            _ => {
                equilibrium_d3q19(rho, ux, uy, uz, &mut feq);
                for q in 0..Q19 {
                    out[q] = fin[q] - omega * (fin[q] - feq[q]);
                }
            }
        }
    }

    /// Advance one timestep: exchange, then per-rank updates reading
    /// remote data only from the halo snapshot. Like the global solver,
    /// the sweep runs on the persistent shared worker pool when the mesh
    /// is large enough — no OS threads are spawned per step.
    pub fn step(&mut self) {
        self.exchange();
        let mesh = &self.mesh;
        let owner = &self.assignment.owner;
        let src = &self.f;
        let halo = &self.halo;
        let omega = self.omega;
        let inlet_slot = &self.inlet_slot;
        let inlet_vel = &self.inlet_vel;

        if self.parallel && mesh.len() >= self.parallel_threshold {
            hemocloud_rt::pool::global().par_chunks_mut(&mut self.f_tmp, Q19, |cell, out| {
                Self::update_cell(
                    mesh, owner, src, halo, omega, inlet_slot, inlet_vel, cell, out,
                );
            });
        } else {
            for (cell, out) in self.f_tmp.chunks_exact_mut(Q19).enumerate() {
                Self::update_cell(
                    mesh, owner, src, halo, omega, inlet_slot, inlet_vel, cell, out,
                );
            }
        }
        std::mem::swap(&mut self.f, &mut self.f_tmp);
        self.steps_taken += 1;
    }

    /// Per-rank communication ledgers for the most recent step.
    pub fn ledgers(&self) -> &[CommLedger] {
        &self.ledgers
    }

    /// Raw distributions (natural order).
    pub fn distributions(&self) -> &[f64] {
        &self.f
    }

    /// The ownership assignment.
    pub fn assignment(&self) -> &RankAssignment {
        &self.assignment
    }

    /// Maximum bytes sent by any rank in the most recent step.
    pub fn max_bytes_sent(&self) -> u64 {
        self.ledgers.iter().map(|l| l.bytes_sent).max().unwrap_or(0)
    }

    /// Maximum messages sent by any rank in the most recent step.
    pub fn max_messages_sent(&self) -> u64 {
        self.ledgers
            .iter()
            .map(|l| l.messages_sent)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{Solver, SolverConfig};
    use hemocloud_geometry::anatomy::CylinderSpec;

    fn cylinder_mesh() -> FluidMesh {
        let g = CylinderSpec::default()
            .with_dimensions(3.0, 12.0)
            .with_resolution(8)
            .build();
        FluidMesh::build(&g)
    }

    /// Split cells into `n` contiguous slabs by fluid-cell index.
    fn slab_assignment(n_cells: usize, n_ranks: usize) -> RankAssignment {
        let per = n_cells.div_ceil(n_ranks);
        let owner = (0..n_cells).map(|c| (c / per) as u32).collect();
        RankAssignment::new(owner, n_ranks)
    }

    #[test]
    fn ranked_matches_global_solver_bitwise() {
        let mesh = cylinder_mesh();
        let config = SolverConfig {
            parallel: false,
            ..Default::default()
        };
        let mut global = Solver::new(mesh.clone(), config);
        let assignment = slab_assignment(mesh.len(), 4);
        let mut ranked = RankedSolver::new(mesh, assignment, config);
        for _ in 0..25 {
            global.step();
            ranked.step();
        }
        for (a, b) in global.distributions().iter().zip(ranked.distributions()) {
            assert_eq!(a, b, "ranked execution diverged from global");
        }
    }

    #[test]
    fn ranked_pool_path_matches_serial_bitwise() {
        // parallel_threshold: 0 forces the per-rank update through the
        // shared worker pool; the sweep must stay bit-identical to the
        // serial one.
        let mesh = cylinder_mesh();
        let assignment = slab_assignment(mesh.len(), 4);
        let mut serial = RankedSolver::new(
            mesh.clone(),
            assignment.clone(),
            SolverConfig {
                parallel: false,
                ..Default::default()
            },
        );
        let mut pooled = RankedSolver::new(
            mesh,
            assignment,
            SolverConfig {
                parallel: true,
                parallel_threshold: 0,
                ..Default::default()
            },
        );
        for _ in 0..20 {
            serial.step();
            pooled.step();
        }
        for (a, b) in serial.distributions().iter().zip(pooled.distributions()) {
            assert_eq!(a, b, "pool-path ranked update diverged from serial");
        }
    }

    #[test]
    fn single_rank_sends_nothing() {
        let mesh = cylinder_mesh();
        let assignment = slab_assignment(mesh.len(), 1);
        let mut s = RankedSolver::new(mesh, assignment, SolverConfig::default());
        s.step();
        assert_eq!(s.max_bytes_sent(), 0);
        assert_eq!(s.max_messages_sent(), 0);
    }

    #[test]
    fn more_ranks_means_more_communication() {
        let mesh = cylinder_mesh();
        let mut totals = Vec::new();
        for n_ranks in [2usize, 4, 8] {
            let assignment = slab_assignment(mesh.len(), n_ranks);
            let mut s = RankedSolver::new(mesh.clone(), assignment, SolverConfig::default());
            s.step();
            let total: u64 = s.ledgers().iter().map(|l| l.bytes_sent).sum();
            totals.push(total);
            assert!(total > 0);
        }
        assert!(
            totals[2] > totals[0],
            "8 ranks should exchange more than 2: {totals:?}"
        );
    }

    #[test]
    fn ledger_messages_bounded_by_rank_pairs() {
        let mesh = cylinder_mesh();
        let n_ranks = 4;
        let assignment = slab_assignment(mesh.len(), n_ranks);
        let mut s = RankedSolver::new(mesh, assignment, SolverConfig::default());
        s.step();
        for l in s.ledgers() {
            assert!(l.messages_sent <= (n_ranks - 1) as u64);
        }
    }
}

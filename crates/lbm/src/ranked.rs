//! Rank-decomposed execution with explicit halo exchange.
//!
//! HARVEY runs under MPI: the mesh is split among ranks, each rank updates
//! its own cells, and boundary distributions are exchanged every step. This
//! module reproduces that structure in-process: each rank owns a set of
//! fluid cells, remote reads go through per-step halo snapshots, and the
//! per-rank message ledger records exactly the bytes and events the
//! performance model costs (paper Eqs. 5, 13, 15).
//!
//! The ranked solver honors the same runtime
//! [`crate::solver::SolverConfig::kernel`] as the global solver:
//!
//! * **AB**: exchange before every step, pull-stream into `f_tmp`, swap.
//! * **AA**: the even step is purely cell-local, so *no exchange happens
//!   at all* (the ledgers record zero traffic — AA halves the exchange
//!   count on top of halving index traffic). Before an odd step the
//!   boundary is snapshotted as usual; remote *reads* come from the
//!   snapshot and remote *writes* (the scatter into `+c_q` neighbors)
//!   land directly in the distribution array — the push half of the
//!   exchange. This is MPI-faithful: the AA odd step's write set equals
//!   its read set per cell and the sets are disjoint across cells
//!   (see `crate::solver` module docs), so no rank can observe another
//!   rank's current-step writes through its own reads.
//!
//! The ranked solver must produce the *same physics* as the global
//! [`crate::solver::Solver`]; the equivalence tests at the bottom are the
//! core integration check between the LBM and decomposition machinery.

use crate::kernel::{AosIdx, Layout, LayoutIdx, Precision, Propagation, SoaIdx};
use crate::lattice::{opposite, Q19};
use crate::mesh::{FluidMesh, SOLID};
use crate::solver::{
    bulk_out, collide_bulk_group, dispatch_owner, flat_index, inlet_out, outlet_out, resolve_exec,
    rest_distributions, ExecKind, VEC_MAXW,
};
use crate::traversal::{self, TraversalConfig};
use hemocloud_geometry::voxel::CellType;
use hemocloud_obs::{Counter, Registry};
use hemocloud_rt::pool::{self, DisjointMut};
use hemocloud_rt::simd::{Element, Lane};
use std::sync::Arc;

/// Assignment of fluid cells to ranks: `owner[cell]` is the rank index.
#[derive(Debug, Clone)]
pub struct RankAssignment {
    /// Rank owning each fluid cell.
    pub owner: Vec<u32>,
    /// Number of ranks.
    pub n_ranks: usize,
}

impl RankAssignment {
    /// Validate and wrap an ownership vector.
    ///
    /// # Panics
    /// Panics if an owner index is out of range.
    pub fn new(owner: Vec<u32>, n_ranks: usize) -> Self {
        assert!(n_ranks > 0);
        assert!(
            owner.iter().all(|&r| (r as usize) < n_ranks),
            "owner index out of range"
        );
        Self { owner, n_ranks }
    }

    /// Cells owned by each rank.
    pub fn cells_per_rank(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.n_ranks];
        for &r in &self.owner {
            counts[r as usize] += 1;
        }
        counts
    }
}

/// Per-step communication ledger of one rank.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CommLedger {
    /// Bytes sent to other ranks this step.
    pub bytes_sent: u64,
    /// Distinct (neighbor rank) messages sent this step.
    pub messages_sent: u64,
}

/// A rank-decomposed solver over a shared mesh.
///
/// Implementation note: distributions live in one global array (we are one
/// process), but every cross-rank read goes through `halo`, a snapshot of
/// boundary values taken during the exchange phase — so the information
/// flow is exactly MPI-like: a rank never observes another rank's
/// *current-step* writes.
pub struct RankedSolver {
    mesh: FluidMesh,
    assignment: RankAssignment,
    f: Vec<f64>,
    /// Second distribution array — AB only; AA streams in place and this
    /// stays empty, same as the global solver.
    f_tmp: Vec<f64>,
    /// Snapshot of remote distributions needed by each rank, rebuilt each
    /// exchange: indexed by the configured layout, valid only for cells in
    /// some rank's receive set.
    halo: Vec<f64>,
    /// For each rank, the list of (remote cell) indices it must receive
    /// before updating, grouped by sending rank for message accounting.
    recv_sets: Vec<Vec<(u32, Vec<u32>)>>,
    omega: f64,
    inlet_slot: Vec<u32>,
    inlet_vel: Vec<[f64; 3]>,
    /// Update cells on the shared worker pool (same gating as
    /// [`crate::solver::SolverConfig::parallel`]). Race-free: AB writes
    /// only the destination cell's slots; AA touches only per-cell
    /// disjoint slot sets (module docs).
    parallel: bool,
    parallel_threshold: usize,
    kernel: crate::kernel::KernelConfig,
    traversal: TraversalConfig,
    /// Resolved execution strategy (scalar / portable lanes / AVX2 lanes),
    /// same resolution as the global solver; bit-neutral either way.
    exec: ExecKind,
    /// Traversal permutation: `order[p]` is the cell visited at position
    /// `p`. The per-rank sweep iterates positions, so ranks inherit the
    /// configured space-filling-curve order; the exchange schedule (and
    /// therefore the halo ledgers) is a pure function of mesh and
    /// assignment, untouched by the permutation.
    order: Vec<u32>,
    steps_taken: u64,
    ledgers: Vec<CommLedger>,
    /// Cumulative halo traffic across all ranks and steps (the per-step
    /// ledgers reset every step; these observability counters never do).
    /// Deterministic: the exchange schedule is a pure function of the
    /// mesh, assignment, and kernel config — the cross-check test pins
    /// them against `DecompAnalysis`' Eq. 9 message accounting.
    obs_halo_bytes: Arc<Counter>,
    obs_halo_messages: Arc<Counter>,
    obs_steps: Arc<Counter>,
}

impl RankedSolver {
    /// Build from a mesh, an ownership assignment, and the same physical
    /// configuration as [`crate::solver::SolverConfig`].
    pub fn new(
        mesh: FluidMesh,
        assignment: RankAssignment,
        config: crate::solver::SolverConfig,
    ) -> Self {
        assert_eq!(assignment.owner.len(), mesh.len(), "assignment size");
        assert!(config.tau > 0.5, "tau must exceed 1/2 for stability");
        assert!(
            config.kernel.precision == Precision::Double,
            "ranked execution stores f64; other precisions are supported by the global Solver only"
        );
        let n = mesh.len();
        let f = rest_distributions(config.kernel.layout, n);
        let f_tmp = match config.kernel.propagation {
            Propagation::Ab => f.clone(),
            Propagation::Aa => Vec::new(),
        };

        // Receive sets: for each rank, the remote cells read by its pull
        // updates, grouped by owner. (The AA odd step reads the same
        // neighbor cells — only the slot within the neighbor's row
        // differs — so one receive-set construction serves both.)
        let mut recv: Vec<std::collections::BTreeMap<u32, std::collections::BTreeSet<u32>>> =
            vec![Default::default(); assignment.n_ranks];
        for cell in 0..n {
            let me = assignment.owner[cell];
            for q in 0..Q19 {
                let nb = mesh.neighbor(cell, q);
                if nb != SOLID {
                    let owner = assignment.owner[nb as usize];
                    if owner != me {
                        recv[me as usize].entry(owner).or_default().insert(nb);
                    }
                }
            }
        }
        let recv_sets: Vec<Vec<(u32, Vec<u32>)>> = recv
            .into_iter()
            .map(|m| {
                m.into_iter()
                    .map(|(owner, cells)| (owner, cells.into_iter().collect()))
                    .collect()
            })
            .collect();

        // Identical inlet boundary data to the global solver.
        let (inlet_slot, inlet_vel) = crate::solver::poiseuille_profile_for(&mesh, &config);

        let ledgers = vec![CommLedger::default(); assignment.n_ranks];
        let order = traversal::permutation(&mesh, config.traversal.order);
        let reg = hemocloud_obs::global();
        Self {
            f_tmp,
            halo: vec![0.0; n * Q19],
            f,
            mesh,
            assignment,
            recv_sets,
            omega: 1.0 / config.tau,
            inlet_slot,
            inlet_vel,
            parallel: config.parallel,
            parallel_threshold: config.parallel_threshold,
            kernel: config.kernel,
            traversal: config.traversal,
            exec: resolve_exec(config.simd),
            order,
            steps_taken: 0,
            ledgers,
            obs_halo_bytes: reg.counter("lbm.ranked.halo_bytes"),
            obs_halo_messages: reg.counter("lbm.ranked.halo_messages"),
            obs_steps: reg.counter("lbm.ranked.steps"),
        }
    }

    /// Rebind this solver's metrics to `registry` (default: the global
    /// registry). Tests use private registries so their counters start
    /// at zero and cannot be polluted by concurrently running tests.
    pub fn use_registry(&mut self, registry: &Registry) {
        self.obs_halo_bytes = registry.counter("lbm.ranked.halo_bytes");
        self.obs_halo_messages = registry.counter("lbm.ranked.halo_messages");
        self.obs_steps = registry.counter("lbm.ranked.steps");
    }

    fn clear_ledgers(&mut self) {
        for ledger in &mut self.ledgers {
            ledger.bytes_sent = 0;
            ledger.messages_sent = 0;
        }
    }

    /// Exchange phase: snapshot every boundary distribution into `halo` and
    /// charge each sending rank's ledger.
    fn exchange(&mut self) {
        self.clear_ledgers();
        let n = self.mesh.len();
        let layout = self.kernel.layout;
        for groups in self.recv_sets.iter() {
            for (sender, cells) in groups {
                let mut bytes = 0u64;
                for &cell in cells {
                    for q in 0..Q19 {
                        let i = flat_index(layout, cell as usize, q, n);
                        self.halo[i] = self.f[i];
                    }
                    bytes += (Q19 * std::mem::size_of::<f64>()) as u64;
                }
                let ledger = &mut self.ledgers[*sender as usize];
                ledger.bytes_sent += bytes;
                ledger.messages_sent += 1;
                self.obs_halo_bytes.add(bytes);
                self.obs_halo_messages.inc();
            }
        }
    }

    /// AB pull-scheme gather for destination cell `cell`, reading remote
    /// neighbors only from the halo snapshot.
    #[inline]
    fn ab_gather<L: LayoutIdx>(
        mesh: &FluidMesh,
        owner: &[u32],
        src: &[f64],
        halo: &[f64],
        cell: usize,
    ) -> [f64; Q19] {
        let n = mesh.len();
        let me = owner[cell];
        let mut fin = [0.0f64; Q19];
        let row = mesh.neighbor_row(cell);
        for q in 0..Q19 {
            let nb = row[opposite(q)];
            fin[q] = if nb == SOLID {
                src[L::at(cell, opposite(q), n)]
            } else if owner[nb as usize] != me {
                halo[L::at(nb as usize, q, n)]
            } else {
                src[L::at(nb as usize, q, n)]
            };
        }
        fin
    }

    /// One AB pull-scheme update for destination cell `cell`. Pure in its
    /// inputs, so the serial and pool-parallel sweeps are bit-identical.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn ab_update_cell<L: LayoutIdx>(
        mesh: &FluidMesh,
        owner: &[u32],
        src: &[f64],
        halo: &[f64],
        omega: f64,
        inlet_slot: &[u32],
        inlet_vel: &[[f64; 3]],
        cell: usize,
        out: &DisjointMut<'_, f64>,
    ) {
        let n = mesh.len();
        let fin = Self::ab_gather::<L>(mesh, owner, src, halo, cell);
        let fout = match mesh.cell_type(cell) {
            CellType::Inlet => inlet_out(&fin, inlet_vel[inlet_slot[cell] as usize]),
            CellType::Outlet => outlet_out(&fin),
            _ => bulk_out(&fin, omega),
        };
        for q in 0..Q19 {
            // Safety: slot (cell, q) of the destination array belongs to
            // `cell` alone.
            unsafe { out.write(L::at(cell, q, n), fout[q]) };
        }
    }

    /// Vectorized AB sweep over a position range: bulk cells buffer into
    /// lane groups for the fused collide ([`collide_bulk_group`]);
    /// inlet/outlet cells and the trailing partial group run scalar.
    /// Deferring a buffered cell's write is safe — AB writes only the
    /// destination array, which no gather reads — and bit-neutral: each
    /// lane computes exactly the scalar expression tree.
    #[allow(clippy::too_many_arguments)]
    fn ab_range_vec<L: LayoutIdx, V: Lane<f64>>(
        mesh: &FluidMesh,
        owner: &[u32],
        src: &[f64],
        halo: &[f64],
        omega: f64,
        inlet_slot: &[u32],
        inlet_vel: &[[f64; 3]],
        order: &[u32],
        positions: std::ops::Range<usize>,
        out: &DisjointMut<'_, f64>,
    ) {
        let n = mesh.len();
        let w = V::WIDTH;
        debug_assert!(w <= VEC_MAXW);
        let mut cells = [0usize; VEC_MAXW];
        let mut fin = [[0.0f64; VEC_MAXW]; Q19];
        let mut filled = 0usize;
        for p in positions {
            let cell = order[p] as usize;
            match mesh.cell_type(cell) {
                CellType::Inlet | CellType::Outlet => {
                    Self::ab_update_cell::<L>(
                        mesh, owner, src, halo, omega, inlet_slot, inlet_vel, cell, out,
                    );
                }
                _ => {
                    let g = Self::ab_gather::<L>(mesh, owner, src, halo, cell);
                    for q in 0..Q19 {
                        fin[q][filled] = g[q];
                    }
                    cells[filled] = cell;
                    filled += 1;
                    if filled == w {
                        let rows = collide_bulk_group::<f64, V>(&fin, omega);
                        for (lane, &cell) in cells.iter().enumerate().take(w) {
                            for q in 0..Q19 {
                                // Safety: slot (cell, q) belongs to `cell`.
                                unsafe { out.write(L::at(cell, q, n), rows[q][lane]) };
                            }
                        }
                        filled = 0;
                    }
                }
            }
        }
        for lane in 0..filled {
            let mut row = [0.0f64; Q19];
            for q in 0..Q19 {
                row[q] = fin[q][lane];
            }
            let fout = bulk_out(&row, omega);
            for q in 0..Q19 {
                // Safety: slot (cells[lane], q) belongs to that cell.
                unsafe { out.write(L::at(cells[lane], q, n), fout[q]) };
            }
        }
    }

    /// One AA even-step update: purely cell-local (read own row, collide,
    /// write the opposite slots). No halo, no index, no cross-rank data.
    #[inline]
    fn aa_even_cell<L: LayoutIdx>(
        mesh: &FluidMesh,
        omega: f64,
        inlet_slot: &[u32],
        inlet_vel: &[[f64; 3]],
        cell: usize,
        f: &DisjointMut<'_, f64>,
    ) {
        let n = mesh.len();
        let mut fin = [0.0f64; Q19];
        for (q, v) in fin.iter_mut().enumerate() {
            // Safety: slot (cell, q) belongs to `cell` alone this step.
            *v = unsafe { f.read(L::at(cell, q, n)) };
        }
        let fout = match mesh.cell_type(cell) {
            CellType::Inlet => inlet_out(&fin, inlet_vel[inlet_slot[cell] as usize]),
            CellType::Outlet => outlet_out(&fin),
            _ => bulk_out(&fin, omega),
        };
        for q in 0..Q19 {
            // Safety: same per-cell slot set; fully read before writing.
            unsafe { f.write(L::at(cell, opposite(q), n), fout[q]) };
        }
    }

    /// AA odd-step gather: arriving values from `-c_q` neighbors' opposite
    /// slots (remote neighbors via the halo snapshot).
    #[inline]
    fn aa_odd_gather<L: LayoutIdx>(
        mesh: &FluidMesh,
        owner: &[u32],
        halo: &[f64],
        cell: usize,
        f: &DisjointMut<'_, f64>,
    ) -> [f64; Q19] {
        let n = mesh.len();
        let me = owner[cell];
        let row = mesh.neighbor_row(cell);
        let mut fin = [0.0f64; Q19];
        for q in 0..Q19 {
            let nb = row[opposite(q)];
            fin[q] = if nb == SOLID {
                // Safety: (cell, q) is in this cell's AA-odd slot set.
                unsafe { f.read(L::at(cell, q, n)) }
            } else if owner[nb as usize] != me {
                halo[L::at(nb as usize, opposite(q), n)]
            } else {
                // Safety: (nb, opp(q)) is claimed by `cell` alone — the
                // streaming index is reciprocal (solver module docs).
                unsafe { f.read(L::at(nb as usize, opposite(q), n)) }
            };
        }
        fin
    }

    /// AA odd-step scatter: forward into `+c_q` neighbors' slots —
    /// including remote ones, the push half of the exchange. The touched
    /// slot set is exactly this cell's AA-odd set, disjoint from every
    /// other cell's.
    #[inline]
    fn aa_odd_scatter<L: LayoutIdx>(
        mesh: &FluidMesh,
        cell: usize,
        fout: &[f64; Q19],
        f: &DisjointMut<'_, f64>,
    ) {
        let n = mesh.len();
        let row = mesh.neighbor_row(cell);
        for q in 0..Q19 {
            let nb = row[q];
            // Safety: identical slot set as the gather, read before write.
            if nb == SOLID {
                unsafe { f.write(L::at(cell, opposite(q), n), fout[q]) };
            } else {
                unsafe { f.write(L::at(nb as usize, q, n), fout[q]) };
            }
        }
    }

    /// One AA odd-step update: gather, collide, scatter.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn aa_odd_cell<L: LayoutIdx>(
        mesh: &FluidMesh,
        owner: &[u32],
        halo: &[f64],
        omega: f64,
        inlet_slot: &[u32],
        inlet_vel: &[[f64; 3]],
        cell: usize,
        f: &DisjointMut<'_, f64>,
    ) {
        let fin = Self::aa_odd_gather::<L>(mesh, owner, halo, cell, f);
        let fout = match mesh.cell_type(cell) {
            CellType::Inlet => inlet_out(&fin, inlet_vel[inlet_slot[cell] as usize]),
            CellType::Outlet => outlet_out(&fin),
            _ => bulk_out(&fin, omega),
        };
        Self::aa_odd_scatter::<L>(mesh, cell, &fout, f);
    }

    /// Vectorized AA sweep (either parity) over a position range: bulk
    /// cells buffer into lane groups, boundary cells and the trailing
    /// partial group run scalar. Deferring a buffered cell's writes past
    /// later cells' gathers is safe because distinct cells' AA slot sets
    /// are pairwise disjoint (solver module docs) — no gather can observe
    /// a deferred write. Bit-neutral for the same reason as the global
    /// solver's vector path.
    #[allow(clippy::too_many_arguments)]
    fn aa_range_vec<L: LayoutIdx, V: Lane<f64>>(
        mesh: &FluidMesh,
        owner: &[u32],
        halo: &[f64],
        even: bool,
        omega: f64,
        inlet_slot: &[u32],
        inlet_vel: &[[f64; 3]],
        order: &[u32],
        positions: std::ops::Range<usize>,
        f: &DisjointMut<'_, f64>,
    ) {
        let n = mesh.len();
        let w = V::WIDTH;
        debug_assert!(w <= VEC_MAXW);
        let gather = |cell: usize| -> [f64; Q19] {
            if even {
                let mut fin = [0.0f64; Q19];
                for (q, v) in fin.iter_mut().enumerate() {
                    // Safety: slot (cell, q) belongs to `cell` this step.
                    *v = unsafe { f.read(L::at(cell, q, n)) };
                }
                fin
            } else {
                Self::aa_odd_gather::<L>(mesh, owner, halo, cell, f)
            }
        };
        let scatter = |cell: usize, fout: &[f64; Q19]| {
            if even {
                for q in 0..Q19 {
                    // Safety: same per-cell slot set the reads used.
                    unsafe { f.write(L::at(cell, opposite(q), n), fout[q]) };
                }
            } else {
                Self::aa_odd_scatter::<L>(mesh, cell, fout, f);
            }
        };
        let mut cells = [0usize; VEC_MAXW];
        let mut fin = [[0.0f64; VEC_MAXW]; Q19];
        let mut filled = 0usize;
        for p in positions {
            let cell = order[p] as usize;
            match mesh.cell_type(cell) {
                CellType::Inlet => {
                    let g = gather(cell);
                    scatter(cell, &inlet_out(&g, inlet_vel[inlet_slot[cell] as usize]));
                }
                CellType::Outlet => {
                    let g = gather(cell);
                    scatter(cell, &outlet_out(&g));
                }
                _ => {
                    let g = gather(cell);
                    for q in 0..Q19 {
                        fin[q][filled] = g[q];
                    }
                    cells[filled] = cell;
                    filled += 1;
                    if filled == w {
                        let rows = collide_bulk_group::<f64, V>(&fin, omega);
                        for (lane, &cell) in cells.iter().enumerate().take(w) {
                            let mut fout = [0.0f64; Q19];
                            for q in 0..Q19 {
                                fout[q] = rows[q][lane];
                            }
                            scatter(cell, &fout);
                        }
                        filled = 0;
                    }
                }
            }
        }
        for lane in 0..filled {
            let mut row = [0.0f64; Q19];
            for q in 0..Q19 {
                row[q] = fin[q][lane];
            }
            scatter(cells[lane], &bulk_out(&row, omega));
        }
    }

    fn workers(&self) -> usize {
        if self.parallel && self.mesh.len() >= self.parallel_threshold {
            pool::global().threads()
        } else {
            1
        }
    }

    fn step_ab<L: LayoutIdx>(&mut self, workers: usize) {
        let trav = self.traversal;
        let mesh = &self.mesh;
        let owner = &self.assignment.owner;
        let src = &self.f;
        let halo = &self.halo;
        let omega = self.omega;
        let inlet_slot = &self.inlet_slot;
        let inlet_vel = &self.inlet_vel;
        let order = &self.order;
        let exec = self.exec;
        let n = mesh.len();
        dispatch_owner(&trav, &mut self.f_tmp, n, workers, |positions, out| {
            match exec {
                ExecKind::Scalar => {
                    for p in positions {
                        let cell = order[p] as usize;
                        Self::ab_update_cell::<L>(
                            mesh, owner, src, halo, omega, inlet_slot, inlet_vel, cell, out,
                        );
                    }
                }
                ExecKind::VectorWide => Self::ab_range_vec::<L, <f64 as Element>::Wide>(
                    mesh, owner, src, halo, omega, inlet_slot, inlet_vel, order, positions, out,
                ),
                ExecKind::VectorAccel => Self::ab_range_vec::<L, <f64 as Element>::Accel>(
                    mesh, owner, src, halo, omega, inlet_slot, inlet_vel, order, positions, out,
                ),
            }
        });
        std::mem::swap(&mut self.f, &mut self.f_tmp);
    }

    fn step_aa<L: LayoutIdx>(&mut self, even: bool, workers: usize) {
        let trav = self.traversal;
        let mesh = &self.mesh;
        let owner = &self.assignment.owner;
        let halo = &self.halo;
        let omega = self.omega;
        let inlet_slot = &self.inlet_slot;
        let inlet_vel = &self.inlet_vel;
        let order = &self.order;
        let exec = self.exec;
        let n = mesh.len();
        dispatch_owner(&trav, &mut self.f, n, workers, |positions, f| {
            match exec {
                ExecKind::Scalar => {
                    for p in positions {
                        let cell = order[p] as usize;
                        if even {
                            Self::aa_even_cell::<L>(mesh, omega, inlet_slot, inlet_vel, cell, f);
                        } else {
                            Self::aa_odd_cell::<L>(
                                mesh, owner, halo, omega, inlet_slot, inlet_vel, cell, f,
                            );
                        }
                    }
                }
                ExecKind::VectorWide => Self::aa_range_vec::<L, <f64 as Element>::Wide>(
                    mesh, owner, halo, even, omega, inlet_slot, inlet_vel, order, positions, f,
                ),
                ExecKind::VectorAccel => Self::aa_range_vec::<L, <f64 as Element>::Accel>(
                    mesh, owner, halo, even, omega, inlet_slot, inlet_vel, order, positions, f,
                ),
            }
        });
    }

    /// Advance one timestep. AB exchanges every step; AA exchanges only
    /// before odd steps (the even step is cell-local — the ledgers record
    /// genuinely zero traffic for it). Like the global solver, the sweep
    /// runs on the persistent shared worker pool when the mesh is large
    /// enough — no OS threads are spawned per step.
    pub fn step(&mut self) {
        self.step_with_workers(self.workers());
    }

    /// Advance one timestep with an explicit logical worker count (≥ 1).
    /// Bit-identical for every count — same guarantee, and same test
    /// purpose, as [`crate::solver::Solver::step_with_workers`].
    pub fn step_with_workers(&mut self, workers: usize) {
        match self.kernel.propagation {
            Propagation::Ab => {
                self.exchange();
                match self.kernel.layout {
                    Layout::Aos => self.step_ab::<AosIdx>(workers),
                    Layout::Soa => self.step_ab::<SoaIdx>(workers),
                }
            }
            Propagation::Aa => {
                let even = self.steps_taken.is_multiple_of(2);
                if even {
                    self.clear_ledgers();
                } else {
                    self.exchange();
                }
                match self.kernel.layout {
                    Layout::Aos => self.step_aa::<AosIdx>(even, workers),
                    Layout::Soa => self.step_aa::<SoaIdx>(even, workers),
                }
            }
        }
        self.steps_taken += 1;
        self.obs_steps.inc();
    }

    /// Per-rank communication ledgers for the most recent step.
    pub fn ledgers(&self) -> &[CommLedger] {
        &self.ledgers
    }

    /// Raw distributions (storage order: the configured layout; natural
    /// direction order only after an even number of AA steps).
    pub fn distributions(&self) -> &[f64] {
        &self.f
    }

    /// The ownership assignment.
    pub fn assignment(&self) -> &RankAssignment {
        &self.assignment
    }

    /// The instruction path the per-rank sweeps execute (`"scalar"`,
    /// `"scalar-lanes"`, or `"avx2"`) — same labels as
    /// [`crate::solver::Solver::simd_label`].
    pub fn simd_label(&self) -> &'static str {
        self.exec.label()
    }

    /// Bytes resident in distribution arrays (`f` plus `f_tmp` when
    /// allocated) — AA halves this, exactly as in the global solver.
    pub fn distribution_bytes(&self) -> usize {
        (self.f.len() + self.f_tmp.len()) * std::mem::size_of::<f64>()
    }

    /// Maximum bytes sent by any rank in the most recent step.
    pub fn max_bytes_sent(&self) -> u64 {
        self.ledgers.iter().map(|l| l.bytes_sent).max().unwrap_or(0)
    }

    /// Maximum messages sent by any rank in the most recent step.
    pub fn max_messages_sent(&self) -> u64 {
        self.ledgers
            .iter()
            .map(|l| l.messages_sent)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::KernelConfig;
    use crate::solver::{Solver, SolverConfig};
    use hemocloud_geometry::anatomy::CylinderSpec;

    fn cylinder_mesh() -> FluidMesh {
        let g = CylinderSpec::default()
            .with_dimensions(3.0, 12.0)
            .with_resolution(8)
            .build();
        FluidMesh::build(&g)
    }

    /// Split cells into `n` contiguous slabs by fluid-cell index.
    fn slab_assignment(n_cells: usize, n_ranks: usize) -> RankAssignment {
        let per = n_cells.div_ceil(n_ranks);
        let owner = (0..n_cells).map(|c| (c / per) as u32).collect();
        RankAssignment::new(owner, n_ranks)
    }

    #[test]
    fn ranked_matches_global_solver_bitwise() {
        let mesh = cylinder_mesh();
        let config = SolverConfig {
            parallel: false,
            ..Default::default()
        };
        let mut global = Solver::new(mesh.clone(), config);
        let assignment = slab_assignment(mesh.len(), 4);
        let mut ranked = RankedSolver::new(mesh, assignment, config);
        for _ in 0..25 {
            global.step();
            ranked.step();
        }
        for (a, b) in global.distributions().iter().zip(ranked.distributions()) {
            assert_eq!(a, b, "ranked execution diverged from global");
        }
    }

    #[test]
    fn ranked_matches_global_solver_bitwise_for_every_kernel_config() {
        // The tentpole equivalence: halo-mediated AA/SoA execution is
        // bit-identical to the global in-place solver — remote reads from
        // the snapshot see exactly the pre-step values the global solver
        // reads in place (25 steps covers both parities).
        let mesh = cylinder_mesh();
        for prop in [Propagation::Ab, Propagation::Aa] {
            for layout in [Layout::Aos, Layout::Soa] {
                let config = SolverConfig {
                    parallel: false,
                    kernel: KernelConfig::sparse(prop, layout),
                    ..Default::default()
                };
                let mut global = Solver::new(mesh.clone(), config);
                let assignment = slab_assignment(mesh.len(), 4);
                let mut ranked = RankedSolver::new(mesh.clone(), assignment, config);
                for _ in 0..25 {
                    global.step();
                    ranked.step();
                }
                for (a, b) in global.distributions().iter().zip(ranked.distributions()) {
                    assert_eq!(a, b, "{prop:?}/{layout:?} ranked diverged from global");
                }
            }
        }
    }

    #[test]
    fn ranked_traversal_configs_preserve_distributions_and_halo_ledgers() {
        // The ranked half of the traversal oracle: permuting, blocking,
        // prefetching, or stealing the per-rank sweep changes neither the
        // distributions nor the halo-byte ledgers — the exchange schedule
        // is a pure function of mesh and assignment, so the ledgers must
        // be *equal*, not merely equivalent. 13 steps covers both AA
        // parities; `steal_chunk: 16` forces many chunks per worker so
        // stealing genuinely engages on this small mesh.
        let mesh = cylinder_mesh();
        let traversals = [
            TraversalConfig::morton(),
            TraversalConfig {
                stealing: true,
                steal_chunk: 16,
                ..TraversalConfig::natural()
            },
            TraversalConfig {
                steal_chunk: 16,
                ..TraversalConfig::tuned()
            },
        ];
        for prop in [Propagation::Ab, Propagation::Aa] {
            for layout in [Layout::Aos, Layout::Soa] {
                let kernel = KernelConfig::sparse(prop, layout);
                let config = SolverConfig {
                    parallel: false,
                    kernel,
                    ..Default::default()
                };
                let assignment = slab_assignment(mesh.len(), 4);
                let mut reference =
                    RankedSolver::new(mesh.clone(), assignment.clone(), config);
                for _ in 0..13 {
                    reference.step_with_workers(1);
                }
                for trav in traversals {
                    for workers in [1usize, 2, 3, 8] {
                        let mut ranked = RankedSolver::new(
                            mesh.clone(),
                            assignment.clone(),
                            SolverConfig {
                                traversal: trav,
                                ..config
                            },
                        );
                        for _ in 0..13 {
                            ranked.step_with_workers(workers);
                        }
                        assert_eq!(
                            reference.distributions(),
                            ranked.distributions(),
                            "{prop:?}/{layout:?} distributions diverged under {} at {workers} workers",
                            trav.name()
                        );
                        assert_eq!(
                            reference.ledgers(),
                            ranked.ledgers(),
                            "{prop:?}/{layout:?} halo ledgers diverged under {} at {workers} workers",
                            trav.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ranked_pool_path_matches_serial_bitwise() {
        // parallel_threshold: 0 forces the per-rank update through the
        // shared worker pool; the sweep must stay bit-identical to the
        // serial one — for the AB default and the AA in-place kernels.
        let mesh = cylinder_mesh();
        let assignment = slab_assignment(mesh.len(), 4);
        for kernel in [
            KernelConfig::harvey(),
            KernelConfig::sparse(Propagation::Aa, Layout::Aos),
            KernelConfig::sparse(Propagation::Aa, Layout::Soa),
        ] {
            let mut serial = RankedSolver::new(
                mesh.clone(),
                assignment.clone(),
                SolverConfig {
                    parallel: false,
                    kernel,
                    ..Default::default()
                },
            );
            let mut pooled = RankedSolver::new(
                mesh.clone(),
                assignment.clone(),
                SolverConfig {
                    parallel: true,
                    parallel_threshold: 0,
                    kernel,
                    ..Default::default()
                },
            );
            for _ in 0..20 {
                serial.step();
                pooled.step();
            }
            for (a, b) in serial.distributions().iter().zip(pooled.distributions()) {
                assert_eq!(a, b, "pool-path ranked update diverged from serial");
            }
        }
    }

    #[test]
    fn ranked_vector_path_is_bitwise_identical_to_scalar_for_every_kernel_config() {
        // The ranked half of the vectorization oracle: buffered lane-group
        // execution with halo-mediated gathers must reproduce the scalar
        // per-cell sweep bit for bit — 13 steps covers both AA parities,
        // multiple worker counts exercise partial groups at range edges.
        use crate::kernel::SimdPath;
        let mesh = cylinder_mesh();
        for prop in [Propagation::Ab, Propagation::Aa] {
            for layout in [Layout::Aos, Layout::Soa] {
                let kernel = KernelConfig::sparse(prop, layout);
                let assignment = slab_assignment(mesh.len(), 4);
                let mut scalar = RankedSolver::new(
                    mesh.clone(),
                    assignment.clone(),
                    SolverConfig {
                        parallel: false,
                        simd: SimdPath::Scalar,
                        kernel,
                        ..Default::default()
                    },
                );
                for _ in 0..13 {
                    scalar.step_with_workers(1);
                }
                for workers in [1usize, 2, 8] {
                    let mut vector = RankedSolver::new(
                        mesh.clone(),
                        assignment.clone(),
                        SolverConfig {
                            parallel: false,
                            simd: SimdPath::Vector,
                            kernel,
                            ..Default::default()
                        },
                    );
                    for _ in 0..13 {
                        vector.step_with_workers(workers);
                    }
                    assert_eq!(
                        scalar.distributions(),
                        vector.distributions(),
                        "{prop:?}/{layout:?} ranked vector diverged at {workers} workers"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "ranked execution stores f64")]
    fn single_precision_ranked_is_rejected() {
        let mesh = cylinder_mesh();
        let assignment = slab_assignment(mesh.len(), 2);
        let _ = RankedSolver::new(
            mesh,
            assignment,
            SolverConfig {
                kernel: KernelConfig::sparse_with_precision(
                    Propagation::Ab,
                    Layout::Soa,
                    Precision::Single,
                ),
                ..Default::default()
            },
        );
    }

    #[test]
    fn single_rank_sends_nothing() {
        let mesh = cylinder_mesh();
        let assignment = slab_assignment(mesh.len(), 1);
        let mut s = RankedSolver::new(mesh, assignment, SolverConfig::default());
        s.step();
        assert_eq!(s.max_bytes_sent(), 0);
        assert_eq!(s.max_messages_sent(), 0);
    }

    #[test]
    fn aa_exchanges_only_before_odd_steps() {
        // AA halves the exchange count: even steps are cell-local and
        // must charge no ledger at all; odd steps exchange the same
        // boundary set AB does.
        let mesh = cylinder_mesh();
        let assignment = slab_assignment(mesh.len(), 4);
        let config = SolverConfig {
            kernel: KernelConfig::sparse(Propagation::Aa, Layout::Aos),
            ..Default::default()
        };
        let mut s = RankedSolver::new(mesh, assignment, config);
        s.step(); // step 0: even, local
        assert_eq!(s.max_bytes_sent(), 0, "even AA step must not exchange");
        assert_eq!(s.max_messages_sent(), 0);
        s.step(); // step 1: odd, exchanges
        assert!(s.max_bytes_sent() > 0, "odd AA step must exchange");
        assert!(s.max_messages_sent() > 0);
    }

    #[test]
    fn aa_ranked_never_allocates_the_scratch_array() {
        let mesh = cylinder_mesh();
        let n = mesh.len();
        let assignment = slab_assignment(n, 4);
        let aa = RankedSolver::new(
            mesh.clone(),
            assignment.clone(),
            SolverConfig {
                kernel: KernelConfig::sparse(Propagation::Aa, Layout::Soa),
                ..Default::default()
            },
        );
        let ab = RankedSolver::new(mesh, assignment, SolverConfig::default());
        assert_eq!(aa.distribution_bytes(), n * Q19 * 8);
        assert_eq!(ab.distribution_bytes(), 2 * n * Q19 * 8);
    }

    #[test]
    fn more_ranks_means_more_communication() {
        let mesh = cylinder_mesh();
        let mut totals = Vec::new();
        for n_ranks in [2usize, 4, 8] {
            let assignment = slab_assignment(mesh.len(), n_ranks);
            let mut s = RankedSolver::new(mesh.clone(), assignment, SolverConfig::default());
            s.step();
            let total: u64 = s.ledgers().iter().map(|l| l.bytes_sent).sum();
            totals.push(total);
            assert!(total > 0);
        }
        assert!(
            totals[2] > totals[0],
            "8 ranks should exchange more than 2: {totals:?}"
        );
    }

    #[test]
    fn ledger_messages_bounded_by_rank_pairs() {
        let mesh = cylinder_mesh();
        let n_ranks = 4;
        let assignment = slab_assignment(mesh.len(), n_ranks);
        let mut s = RankedSolver::new(mesh, assignment, SolverConfig::default());
        s.step();
        for l in s.ledgers() {
            assert!(l.messages_sent <= (n_ranks - 1) as u64);
        }
    }

    #[test]
    fn measured_halo_traffic_matches_decomp_analysis() {
        // The measured ledgers must agree *exactly* with the static census
        // the direct model's Eq. 9 communication terms are built from:
        // `DecompAnalysis.messages[a][b]` counts the boundary points rank
        // `a` ships to `b` each step, and the solver moves all Q19
        // distributions (19 × 8 bytes) per shipped point. Both sides see
        // the same RCB partition, so the executed exchange schedule is the
        // model's message graph realized.
        use hemocloud_decomp::halo::DecompAnalysis;
        use hemocloud_decomp::rcb::RcbPartition;
        use hemocloud_geometry::anatomy::CylinderSpec;

        let grid = CylinderSpec::default()
            .with_dimensions(3.0, 12.0)
            .with_resolution(8)
            .build();
        let mesh = FluidMesh::build(&grid);
        let n_ranks = 4;
        let rcb = RcbPartition::new(&grid, n_ranks);
        let analysis = DecompAnalysis::analyze(&grid, &rcb);

        use hemocloud_decomp::partition::Ownership;
        let owner: Vec<u32> = (0..mesh.len())
            .map(|cell| {
                let (x, y, z) = mesh.coords(cell);
                rcb.owner(x, y, z) as u32
            })
            .collect();
        let assignment = RankAssignment::new(owner, n_ranks);

        let registry = Registry::new();
        let mut s = RankedSolver::new(mesh, assignment, SolverConfig::default());
        s.use_registry(&registry);
        s.step(); // AB: one exchange per step

        let point_bytes = (Q19 * std::mem::size_of::<f64>()) as u64;
        let mut total_bytes = 0u64;
        let mut total_messages = 0u64;
        for (rank, ledger) in s.ledgers().iter().enumerate() {
            let send_points: usize = analysis.messages[rank].values().sum();
            let peers = analysis.messages[rank].len() as u64;
            assert_eq!(
                ledger.bytes_sent,
                send_points as u64 * point_bytes,
                "rank {rank}: measured bytes diverge from Eq. 9 accounting"
            );
            assert_eq!(
                ledger.messages_sent, peers,
                "rank {rank}: measured message count diverges from peer count"
            );
            total_bytes += ledger.bytes_sent;
            total_messages += ledger.messages_sent;
        }
        assert!(total_bytes > 0, "RCB at 4 ranks must communicate");

        // The cumulative observability counters carry the same totals.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("lbm.ranked.halo_bytes"), Some(total_bytes));
        assert_eq!(
            snap.counter("lbm.ranked.halo_messages"),
            Some(total_messages)
        );
        assert_eq!(snap.counter("lbm.ranked.steps"), Some(1));
    }
}

//! The STREAM memory-bandwidth benchmark (McCalpin), threaded.
//!
//! Four kernels over large arrays, with the canonical byte accounting:
//!
//! | kernel | operation        | bytes/element |
//! |--------|------------------|---------------|
//! | Copy   | `c[i] = a[i]`    | 16 |
//! | Scale  | `b[i] = s*c[i]`  | 16 |
//! | Add    | `c[i] = a[i]+b[i]` | 24 |
//! | Triad  | `a[i] = b[i]+s*c[i]` | 24 |
//!
//! The paper uses the Copy measurement as the sustained bandwidth its
//! performance model divides by ("it best reflects the bandwidth
//! achievable by LBM kernels"). The thread sweep reproduces the Fig. 5
//! methodology on the host machine: one thread per core, arrays much
//! larger than cache.
//!
//! Workers come from the persistent shared pool (`hemocloud_rt::pool`) —
//! STREAM numbers must measure memory bandwidth, not thread spawn/join
//! overhead, and the solver whose MFLUPS the model divides against runs
//! on the same pool.

use crate::timing::best_of;
use hemocloud_rt::pool::{self, SendPtr};

/// The four STREAM kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamKernel {
    /// `c[i] = a[i]`
    Copy,
    /// `b[i] = s * c[i]`
    Scale,
    /// `c[i] = a[i] + b[i]`
    Add,
    /// `a[i] = b[i] + s * c[i]`
    Triad,
}

impl StreamKernel {
    /// Bytes moved per element under STREAM's counting convention.
    pub fn bytes_per_element(self) -> usize {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 16,
            StreamKernel::Add | StreamKernel::Triad => 24,
        }
    }

    /// Canonical kernel name.
    pub fn name(self) -> &'static str {
        match self {
            StreamKernel::Copy => "Copy",
            StreamKernel::Scale => "Scale",
            StreamKernel::Add => "Add",
            StreamKernel::Triad => "Triad",
        }
    }
}

/// One measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamMeasurement {
    /// Kernel measured.
    pub kernel: StreamKernel,
    /// Threads used.
    pub threads: usize,
    /// Array length (elements per array).
    pub elements: usize,
    /// Best-of-N bandwidth, MB/s.
    pub bandwidth_mb_s: f64,
}

/// Run one STREAM kernel with `threads` threads over arrays of
/// `elements` doubles, best of `reps` repetitions.
///
/// # Panics
/// Panics for zero threads, zero reps, or arrays smaller than the thread
/// count.
pub fn stream_kernel(
    kernel: StreamKernel,
    threads: usize,
    elements: usize,
    reps: usize,
) -> StreamMeasurement {
    assert!(threads > 0, "zero threads");
    assert!(elements >= threads, "array smaller than thread count");
    let scalar = 3.0f64;
    let mut a = vec![1.0f64; elements];
    let mut b = vec![2.0f64; elements];
    let mut c = vec![0.0f64; elements];

    // Disjoint per-worker ranges of all three arrays, executed as one job
    // on the persistent shared pool per repetition — STREAM must measure
    // memory bandwidth, not per-measurement thread spawn/join overhead.
    let pool = pool::global();
    let (pa, pb, pc) = (
        SendPtr(a.as_mut_ptr()),
        SendPtr(b.as_mut_ptr()),
        SendPtr(c.as_mut_ptr()),
    );
    let seconds = best_of(reps, || {
        pool.run(threads, &move |w: usize| {
            // Rebind so the closure captures the `SendPtr`s themselves
            // rather than their raw (non-Sync) fields.
            let (pa, pb, pc) = (pa, pb, pc);
            // Balanced split: worker w owns `[start, start + len)`.
            let base = elements / threads;
            let extra = elements % threads;
            let start = w * base + w.min(extra);
            let len = base + usize::from(w < extra);
            // Safety: worker ranges tile `0..elements` disjointly, and
            // `pool.run` blocks until every worker finishes, keeping the
            // arrays' borrows alive for the duration.
            let (ca, cb, cc) = unsafe {
                (
                    std::slice::from_raw_parts_mut(pa.0.add(start), len),
                    std::slice::from_raw_parts_mut(pb.0.add(start), len),
                    std::slice::from_raw_parts_mut(pc.0.add(start), len),
                )
            };
            match kernel {
                StreamKernel::Copy => {
                    for (x, y) in cc.iter_mut().zip(ca.iter()) {
                        *x = *y;
                    }
                }
                StreamKernel::Scale => {
                    for (x, y) in cb.iter_mut().zip(cc.iter()) {
                        *x = scalar * *y;
                    }
                }
                StreamKernel::Add => {
                    for ((x, y), z) in cc.iter_mut().zip(ca.iter()).zip(cb.iter()) {
                        *x = *y + *z;
                    }
                }
                StreamKernel::Triad => {
                    for ((x, y), z) in ca.iter_mut().zip(cb.iter()).zip(cc.iter()) {
                        *x = *y + scalar * *z;
                    }
                }
            }
        });
    });
    std::hint::black_box((&a, &b, &c));

    let bytes = kernel.bytes_per_element() * elements;
    StreamMeasurement {
        kernel,
        threads,
        elements,
        bandwidth_mb_s: bytes as f64 / seconds / 1e6,
    }
}

/// Copy-kernel sweep over thread counts — the host-machine analog of the
/// paper's Fig. 5 data collection, ready for the two-line fit.
pub fn stream_sweep(
    thread_counts: &[usize],
    elements: usize,
    reps: usize,
) -> Vec<StreamMeasurement> {
    thread_counts
        .iter()
        .map(|&t| stream_kernel(StreamKernel::Copy, t, elements, reps))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Small arrays in unit tests: these verify plumbing, not peak numbers
    // (the bench crate measures with cache-busting sizes).
    const N: usize = 200_000;

    #[test]
    fn copy_produces_positive_bandwidth() {
        let m = stream_kernel(StreamKernel::Copy, 1, N, 2);
        assert!(m.bandwidth_mb_s > 0.0);
        assert_eq!(m.kernel, StreamKernel::Copy);
    }

    #[test]
    fn all_kernels_run() {
        for k in [
            StreamKernel::Copy,
            StreamKernel::Scale,
            StreamKernel::Add,
            StreamKernel::Triad,
        ] {
            let m = stream_kernel(k, 2, N, 1);
            assert!(m.bandwidth_mb_s > 0.0, "{}", k.name());
        }
    }

    #[test]
    fn byte_accounting() {
        assert_eq!(StreamKernel::Copy.bytes_per_element(), 16);
        assert_eq!(StreamKernel::Triad.bytes_per_element(), 24);
    }

    #[test]
    fn sweep_returns_requested_counts() {
        let sweep = stream_sweep(&[1, 2], N, 1);
        assert_eq!(sweep.len(), 2);
        assert_eq!(sweep[0].threads, 1);
        assert_eq!(sweep[1].threads, 2);
    }

    #[test]
    #[should_panic(expected = "zero threads")]
    fn zero_threads_panics() {
        let _ = stream_kernel(StreamKernel::Copy, 0, N, 1);
    }
}

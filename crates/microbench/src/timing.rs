//! Timing helpers: best-of-N repetition control.

use std::time::Instant;

/// Run `f` `reps` times and return the best (minimum) wall-clock seconds.
/// Minimum-of-N is the STREAM convention: it rejects one-sided OS noise.
///
/// # Panics
/// Panics if `reps` is zero.
pub fn best_of<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    assert!(reps > 0, "need at least one repetition");
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_of_returns_positive_time() {
        let t = best_of(3, || {
            let v: Vec<u64> = (0..10_000).collect();
            std::hint::black_box(v.iter().sum::<u64>());
        });
        assert!(t > 0.0);
    }

    #[test]
    fn best_of_is_min() {
        // The best of many reps can only improve or match a single rep's
        // upper bound; sanity-check ordering with a sleep.
        let slow = best_of(1, || std::thread::sleep(std::time::Duration::from_millis(5)));
        let best = best_of(3, || std::thread::sleep(std::time::Duration::from_millis(1)));
        assert!(best < slow);
    }

    #[test]
    #[should_panic(expected = "at least one repetition")]
    fn zero_reps_panics() {
        let _ = best_of(0, || {});
    }
}

//! Real host microbenchmarks.
//!
//! The simulated platforms (the `hemocloud-cluster` crate) stand in for
//! the paper's cloud instances, but the benchmark *programs* themselves
//! are real: [`stream`] implements the four STREAM kernels
//! (Copy, Scale, Add, Triad) with a thread sweep, and [`pingpong`]
//! measures thread-pair message latency/bandwidth — the in-process analog
//! of intranodal MPI PingPong. Their outputs use the same schema as the
//! simulated microbenchmarks, so the entire characterize→fit→predict
//! pipeline can run against this machine as a sixth "platform".

pub mod pingpong;
pub mod stream;
pub mod timing;

pub use pingpong::{pingpong_sweep, PingPongMeasurement};
pub use stream::{stream_kernel, stream_sweep, StreamKernel, StreamMeasurement};

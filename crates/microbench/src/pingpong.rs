//! Thread-pair PingPong: message latency and bandwidth between two OS
//! threads.
//!
//! The in-process analog of the Intel MPI Benchmark's PingPong used by the
//! paper for intranodal measurements: two threads bounce a byte buffer
//! through a pair of channels; half the round-trip time is the one-way
//! message time. Buffers are copied on each hop (like an MPI eager-path
//! send), so large messages measure memcpy bandwidth and small ones
//! measure synchronization latency.

use std::sync::mpsc;

/// One PingPong measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PingPongMeasurement {
    /// Message size, bytes.
    pub bytes: usize,
    /// One-way time, microseconds (half the mean round trip).
    pub time_us: f64,
}

/// Measure one-way message time for each size in `sizes`, averaging over
/// `round_trips` bounces per size.
///
/// # Panics
/// Panics if `round_trips` is zero.
pub fn pingpong_sweep(sizes: &[usize], round_trips: usize) -> Vec<PingPongMeasurement> {
    assert!(round_trips > 0, "need at least one round trip");
    sizes
        .iter()
        .map(|&bytes| PingPongMeasurement {
            bytes,
            time_us: one_way_time_us(bytes, round_trips),
        })
        .collect()
}

fn one_way_time_us(bytes: usize, round_trips: usize) -> f64 {
    let (to_echo, echo_in) = mpsc::sync_channel::<Vec<u8>>(1);
    let (echo_out, from_echo) = mpsc::sync_channel::<Vec<u8>>(1);

    let echoer = std::thread::spawn(move || {
        while let Ok(msg) = echo_in.recv() {
            // Copy on the return hop, like an eager-path receive.
            let reply = msg.clone();
            if echo_out.send(reply).is_err() {
                break;
            }
        }
    });

    let payload = vec![0u8; bytes];
    // Warm up the channel pair.
    to_echo.send(payload.clone()).expect("echo thread alive");
    let _ = from_echo.recv().expect("echo thread alive");

    let start = std::time::Instant::now();
    for _ in 0..round_trips {
        to_echo.send(payload.clone()).expect("echo thread alive");
        let back = from_echo.recv().expect("echo thread alive");
        std::hint::black_box(&back);
    }
    let elapsed = start.elapsed().as_secs_f64();
    drop(to_echo);
    echoer.join().expect("echo thread join");

    elapsed / round_trips as f64 / 2.0 * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_measures_all_sizes() {
        let sweep = pingpong_sweep(&[0, 1024, 65_536], 20);
        assert_eq!(sweep.len(), 3);
        for m in &sweep {
            assert!(m.time_us > 0.0, "{} bytes", m.bytes);
        }
    }

    #[test]
    fn large_messages_cost_more_than_small() {
        let sweep = pingpong_sweep(&[0, 4 * 1024 * 1024], 5);
        assert!(
            sweep[1].time_us > sweep[0].time_us,
            "4 MB {} µs !> 0 B {} µs",
            sweep[1].time_us,
            sweep[0].time_us
        );
    }

    #[test]
    fn fits_the_linear_model() {
        // The host measurement must be consumable by the same fit the
        // simulated PingPong uses.
        let sweep = pingpong_sweep(&[0, 4096, 65_536, 1_048_576], 20);
        let xs: Vec<f64> = sweep.iter().map(|m| m.bytes as f64).collect();
        let ys: Vec<f64> = sweep.iter().map(|m| m.time_us).collect();
        let fit = hemocloud_fitting_shim::fit(&xs, &ys, ys[0]);
        assert!(fit > 0.0, "non-positive fitted slope {fit}");
    }

    /// Minimal local shim so this crate does not depend on the fitting
    /// crate just for one test: pinned-intercept least squares slope.
    #[cfg(test)]
    mod hemocloud_fitting_shim {
        pub fn fit(xs: &[f64], ys: &[f64], intercept: f64) -> f64 {
            let (mut sxx, mut sxy) = (0.0, 0.0);
            for (&x, &y) in xs.iter().zip(ys) {
                sxx += x * x;
                sxy += x * (y - intercept);
            }
            sxy / sxx
        }
    }
}

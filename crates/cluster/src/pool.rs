//! Capacity-limited node pools: how many whole nodes of a platform a
//! campaign may occupy at once.
//!
//! The paper's dashboard prices *one* job against an unlimited provider;
//! an operational campaign (Discussion §IV) runs many jobs against a
//! bounded allocation — a reserved-instance block, a quota, or a cluster
//! partition. [`NodePool`] tracks free/busy nodes and accumulates
//! busy-node-seconds so a campaign report can state per-platform
//! utilization.

use crate::platform::Platform;
use std::collections::BTreeSet;

/// A bounded allocation of whole nodes on one platform.
///
/// Nodes carry stable *physical ids* `0..nodes_total` so a route-aware
/// fabric can map a job's ranks onto concrete topology nodes: the
/// id-based [`NodePool::try_alloc_ids`]/[`NodePool::release_ids`] pair
/// hands out the lowest free ids first (deterministic across reruns and
/// shard counts), while the count-based [`NodePool::try_alloc`]/
/// [`NodePool::release`] pair keeps the original anonymous interface for
/// callers that never look at the topology.
#[derive(Debug, Clone)]
pub struct NodePool {
    /// The platform the nodes belong to.
    pub platform: Platform,
    nodes_total: usize,
    free: BTreeSet<usize>,
    /// Ids handed out through the anonymous count-based interface, in
    /// allocation order (released LIFO).
    anon_busy: Vec<usize>,
    busy_node_seconds: f64,
    peak_nodes_busy: usize,
}

impl NodePool {
    /// A pool of `nodes_total` nodes, capped at the platform's maximum
    /// allocation ([`Platform::max_nodes`]).
    ///
    /// # Panics
    /// Panics on a zero-node pool.
    pub fn new(platform: Platform, nodes_total: usize) -> Self {
        assert!(nodes_total > 0, "zero-node pool on {}", platform.abbrev);
        let capped = nodes_total.min(platform.max_nodes());
        Self {
            platform,
            nodes_total: capped,
            free: (0..capped).collect(),
            anon_busy: Vec::new(),
            busy_node_seconds: 0.0,
            peak_nodes_busy: 0,
        }
    }

    /// Total nodes in the pool.
    pub fn nodes_total(&self) -> usize {
        self.nodes_total
    }

    /// Nodes currently free.
    pub fn nodes_free(&self) -> usize {
        self.free.len()
    }

    /// Nodes currently allocated to jobs.
    pub fn nodes_busy(&self) -> usize {
        self.nodes_total - self.free.len()
    }

    /// Whether `nodes` nodes could ever fit in this pool (ignoring the
    /// current occupancy).
    pub fn can_host(&self, nodes: usize) -> bool {
        nodes > 0 && nodes <= self.nodes_total
    }

    /// Try to allocate `nodes` specific physical nodes now, lowest free
    /// ids first. Returns `None` (and changes nothing) when fewer are
    /// free. The returned ids are sorted ascending.
    pub fn try_alloc_ids(&mut self, nodes: usize) -> Option<Vec<usize>> {
        if nodes == 0 || nodes > self.free.len() {
            return None;
        }
        let ids: Vec<usize> = self.free.iter().take(nodes).copied().collect();
        for id in &ids {
            self.free.remove(id);
        }
        self.peak_nodes_busy = self.peak_nodes_busy.max(self.nodes_busy());
        Some(ids)
    }

    /// Try to allocate `nodes` anonymous nodes now. Returns `false` (and
    /// changes nothing) when fewer are free.
    pub fn try_alloc(&mut self, nodes: usize) -> bool {
        match self.try_alloc_ids(nodes) {
            Some(ids) => {
                self.anon_busy.extend(ids);
                true
            }
            None => false,
        }
    }

    /// High-water mark of simultaneously busy nodes over the pool's
    /// lifetime — how much of a reserved allocation the campaign ever
    /// actually needed at once.
    pub fn peak_nodes_busy(&self) -> usize {
        self.peak_nodes_busy
    }

    /// Return specific physical nodes held for `held_seconds` of
    /// simulated time.
    ///
    /// # Panics
    /// Panics when an id is already free (double release) or on a
    /// negative hold time.
    pub fn release_ids(&mut self, ids: &[usize], held_seconds: f64) {
        assert!(
            held_seconds >= 0.0 && held_seconds.is_finite(),
            "bad hold time {held_seconds}"
        );
        for &id in ids {
            assert!(id < self.nodes_total, "node id {id} out of range");
            assert!(
                self.free.insert(id),
                "releasing node {id} twice on {}",
                self.platform.abbrev
            );
        }
        self.busy_node_seconds += ids.len() as f64 * held_seconds;
    }

    /// Return `nodes` anonymously allocated nodes held for
    /// `held_seconds` of simulated time.
    ///
    /// # Panics
    /// Panics when releasing more nodes than are busy or on a negative
    /// hold time.
    pub fn release(&mut self, nodes: usize, held_seconds: f64) {
        assert!(
            nodes <= self.anon_busy.len(),
            "releasing {nodes} nodes, only {} busy on {}",
            self.anon_busy.len(),
            self.platform.abbrev
        );
        let at = self.anon_busy.len() - nodes;
        let ids: Vec<usize> = self.anon_busy.split_off(at);
        self.release_ids(&ids, held_seconds);
    }

    /// Accumulated busy node-seconds over every completed allocation.
    pub fn busy_node_seconds(&self) -> f64 {
        self.busy_node_seconds
    }

    /// Fraction of the pool's node-seconds used over a horizon (e.g. the
    /// campaign makespan). Zero for a zero-length horizon.
    pub fn utilization(&self, horizon_seconds: f64) -> f64 {
        let capacity = self.nodes_total as f64 * horizon_seconds;
        if capacity <= 0.0 {
            0.0
        } else {
            self.busy_node_seconds / capacity
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_release_round_trip() {
        let mut pool = NodePool::new(Platform::csp2(), 3);
        assert_eq!(pool.nodes_total(), 3);
        assert!(pool.try_alloc(2));
        assert_eq!(pool.nodes_free(), 1);
        assert_eq!(pool.nodes_busy(), 2);
        assert!(!pool.try_alloc(2), "only one node free");
        pool.release(2, 100.0);
        assert_eq!(pool.nodes_free(), 3);
        hemocloud_rt::float::assert_close(pool.busy_node_seconds(), 200.0, 0.0, 2);
    }

    #[test]
    fn peak_busy_is_a_high_water_mark() {
        let mut pool = NodePool::new(Platform::csp2(), 4);
        assert_eq!(pool.peak_nodes_busy(), 0);
        assert!(pool.try_alloc(1));
        assert!(pool.try_alloc(2));
        assert_eq!(pool.peak_nodes_busy(), 3);
        pool.release(3, 10.0);
        assert!(pool.try_alloc(1));
        assert_eq!(pool.peak_nodes_busy(), 3, "peak survives release");
    }

    #[test]
    fn pool_is_capped_at_platform_allocation() {
        // CSP-2 offers 144 cores at 36/node = 4 nodes.
        let pool = NodePool::new(Platform::csp2(), 100);
        assert_eq!(pool.nodes_total(), 4);
        assert!(pool.can_host(4));
        assert!(!pool.can_host(5));
        assert!(!pool.can_host(0));
    }

    #[test]
    fn utilization_over_a_horizon() {
        let mut pool = NodePool::new(Platform::csp1(), 2);
        assert!(pool.try_alloc(1));
        pool.release(1, 50.0);
        // 50 node-seconds of 2 nodes × 100 s capacity.
        hemocloud_rt::float::assert_close(pool.utilization(100.0), 0.25, 0.0, 2);
        assert_eq!(pool.utilization(0.0), 0.0);
    }

    #[test]
    fn zero_alloc_is_refused() {
        let mut pool = NodePool::new(Platform::trc(), 2);
        assert!(!pool.try_alloc(0));
        assert_eq!(pool.nodes_free(), 2);
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn over_release_panics() {
        let mut pool = NodePool::new(Platform::csp1(), 2);
        pool.release(1, 0.0);
    }

    #[test]
    fn id_allocation_hands_out_lowest_free_ids_first() {
        let mut pool = NodePool::new(Platform::csp2_small(), 6);
        let a = pool.try_alloc_ids(2).unwrap();
        assert_eq!(a, vec![0, 1]);
        let b = pool.try_alloc_ids(3).unwrap();
        assert_eq!(b, vec![2, 3, 4]);
        // Releasing A makes its ids the lowest free again.
        pool.release_ids(&a, 10.0);
        let c = pool.try_alloc_ids(3).unwrap();
        assert_eq!(c, vec![0, 1, 5]);
        assert_eq!(pool.nodes_busy(), 6);
        assert!(pool.try_alloc_ids(1).is_none());
        hemocloud_rt::float::assert_close(pool.busy_node_seconds(), 20.0, 0.0, 2);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn double_release_of_an_id_panics() {
        let mut pool = NodePool::new(Platform::csp1(), 2);
        let ids = pool.try_alloc_ids(1).unwrap();
        pool.release_ids(&ids, 0.0);
        pool.release_ids(&ids, 0.0);
    }

    #[test]
    fn anonymous_and_id_allocations_share_the_pool() {
        let mut pool = NodePool::new(Platform::csp2_small(), 4);
        assert!(pool.try_alloc(2)); // takes ids 0, 1 anonymously
        let ids = pool.try_alloc_ids(2).unwrap();
        assert_eq!(ids, vec![2, 3]);
        pool.release(2, 5.0);
        assert_eq!(pool.nodes_free(), 2);
        assert_eq!(pool.peak_nodes_busy(), 4);
    }
}

//! Capacity-limited node pools: how many whole nodes of a platform a
//! campaign may occupy at once.
//!
//! The paper's dashboard prices *one* job against an unlimited provider;
//! an operational campaign (Discussion §IV) runs many jobs against a
//! bounded allocation — a reserved-instance block, a quota, or a cluster
//! partition. [`NodePool`] tracks free/busy nodes and accumulates
//! busy-node-seconds so a campaign report can state per-platform
//! utilization.

use crate::platform::Platform;

/// A bounded allocation of whole nodes on one platform.
#[derive(Debug, Clone)]
pub struct NodePool {
    /// The platform the nodes belong to.
    pub platform: Platform,
    nodes_total: usize,
    nodes_free: usize,
    busy_node_seconds: f64,
    peak_nodes_busy: usize,
}

impl NodePool {
    /// A pool of `nodes_total` nodes, capped at the platform's maximum
    /// allocation ([`Platform::max_nodes`]).
    ///
    /// # Panics
    /// Panics on a zero-node pool.
    pub fn new(platform: Platform, nodes_total: usize) -> Self {
        assert!(nodes_total > 0, "zero-node pool on {}", platform.abbrev);
        let capped = nodes_total.min(platform.max_nodes());
        Self {
            platform,
            nodes_total: capped,
            nodes_free: capped,
            busy_node_seconds: 0.0,
            peak_nodes_busy: 0,
        }
    }

    /// Total nodes in the pool.
    pub fn nodes_total(&self) -> usize {
        self.nodes_total
    }

    /// Nodes currently free.
    pub fn nodes_free(&self) -> usize {
        self.nodes_free
    }

    /// Nodes currently allocated to jobs.
    pub fn nodes_busy(&self) -> usize {
        self.nodes_total - self.nodes_free
    }

    /// Whether `nodes` nodes could ever fit in this pool (ignoring the
    /// current occupancy).
    pub fn can_host(&self, nodes: usize) -> bool {
        nodes > 0 && nodes <= self.nodes_total
    }

    /// Try to allocate `nodes` nodes now. Returns `false` (and changes
    /// nothing) when fewer are free.
    pub fn try_alloc(&mut self, nodes: usize) -> bool {
        if nodes == 0 || nodes > self.nodes_free {
            return false;
        }
        self.nodes_free -= nodes;
        self.peak_nodes_busy = self.peak_nodes_busy.max(self.nodes_busy());
        true
    }

    /// High-water mark of simultaneously busy nodes over the pool's
    /// lifetime — how much of a reserved allocation the campaign ever
    /// actually needed at once.
    pub fn peak_nodes_busy(&self) -> usize {
        self.peak_nodes_busy
    }

    /// Return `nodes` nodes held for `held_seconds` of simulated time.
    ///
    /// # Panics
    /// Panics when releasing more nodes than are busy or on a negative
    /// hold time.
    pub fn release(&mut self, nodes: usize, held_seconds: f64) {
        assert!(
            nodes <= self.nodes_busy(),
            "releasing {nodes} nodes, only {} busy on {}",
            self.nodes_busy(),
            self.platform.abbrev
        );
        assert!(held_seconds >= 0.0, "negative hold time");
        self.nodes_free += nodes;
        self.busy_node_seconds += nodes as f64 * held_seconds;
    }

    /// Accumulated busy node-seconds over every completed allocation.
    pub fn busy_node_seconds(&self) -> f64 {
        self.busy_node_seconds
    }

    /// Fraction of the pool's node-seconds used over a horizon (e.g. the
    /// campaign makespan). Zero for a zero-length horizon.
    pub fn utilization(&self, horizon_seconds: f64) -> f64 {
        let capacity = self.nodes_total as f64 * horizon_seconds;
        if capacity <= 0.0 {
            0.0
        } else {
            self.busy_node_seconds / capacity
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_release_round_trip() {
        let mut pool = NodePool::new(Platform::csp2(), 3);
        assert_eq!(pool.nodes_total(), 3);
        assert!(pool.try_alloc(2));
        assert_eq!(pool.nodes_free(), 1);
        assert_eq!(pool.nodes_busy(), 2);
        assert!(!pool.try_alloc(2), "only one node free");
        pool.release(2, 100.0);
        assert_eq!(pool.nodes_free(), 3);
        assert!((pool.busy_node_seconds() - 200.0).abs() < 1e-12);
    }

    #[test]
    fn peak_busy_is_a_high_water_mark() {
        let mut pool = NodePool::new(Platform::csp2(), 4);
        assert_eq!(pool.peak_nodes_busy(), 0);
        assert!(pool.try_alloc(1));
        assert!(pool.try_alloc(2));
        assert_eq!(pool.peak_nodes_busy(), 3);
        pool.release(3, 10.0);
        assert!(pool.try_alloc(1));
        assert_eq!(pool.peak_nodes_busy(), 3, "peak survives release");
    }

    #[test]
    fn pool_is_capped_at_platform_allocation() {
        // CSP-2 offers 144 cores at 36/node = 4 nodes.
        let pool = NodePool::new(Platform::csp2(), 100);
        assert_eq!(pool.nodes_total(), 4);
        assert!(pool.can_host(4));
        assert!(!pool.can_host(5));
        assert!(!pool.can_host(0));
    }

    #[test]
    fn utilization_over_a_horizon() {
        let mut pool = NodePool::new(Platform::csp1(), 2);
        assert!(pool.try_alloc(1));
        pool.release(1, 50.0);
        // 50 node-seconds of 2 nodes × 100 s capacity.
        assert!((pool.utilization(100.0) - 0.25).abs() < 1e-12);
        assert_eq!(pool.utilization(0.0), 0.0);
    }

    #[test]
    fn zero_alloc_is_refused() {
        let mut pool = NodePool::new(Platform::trc(), 2);
        assert!(!pool.try_alloc(0));
        assert_eq!(pool.nodes_free(), 2);
    }

    #[test]
    #[should_panic(expected = "releasing")]
    fn over_release_panics() {
        let mut pool = NodePool::new(Platform::csp1(), 2);
        pool.release(1, 0.0);
    }
}

//! Node memory-subsystem model.
//!
//! Wraps a platform's ground-truth two-line curve with the sharing rule
//! the paper assumes ("available memory bandwidth is linearly dependent on
//! the number of tasks per node") and the measurement noise the simulated
//! STREAM benchmark exhibits.

use crate::platform::Platform;

/// Node bandwidth (MB/s) with `threads` active threads — the quantity
/// STREAM measures.
pub fn node_bandwidth(platform: &Platform, threads: usize) -> f64 {
    platform.memory.bandwidth(threads as f64)
}

/// Bandwidth available to *one* of `tasks_on_node` equal tasks saturating
/// the node together: the paper's even-share assumption.
pub fn per_task_bandwidth(platform: &Platform, tasks_on_node: usize) -> f64 {
    assert!(tasks_on_node > 0);
    node_bandwidth(platform, tasks_on_node) / tasks_on_node as f64
}

/// Seconds to move `bytes` from memory for one task sharing a node with
/// `tasks_on_node - 1` peers, at `efficiency` of STREAM-copy bandwidth.
pub fn memory_time_s(
    platform: &Platform,
    tasks_on_node: usize,
    bytes: f64,
    efficiency: f64,
) -> f64 {
    assert!(efficiency > 0.0 && efficiency <= 1.0);
    let bw = per_task_bandwidth(platform, tasks_on_node) * efficiency;
    bytes / (bw * 1e6) // MB/s → bytes/s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_task_share_splits_evenly() {
        let p = Platform::csp2();
        let full = node_bandwidth(&p, 36);
        let share = per_task_bandwidth(&p, 36);
        assert!((share * 36.0 - full).abs() < 1e-9);
    }

    #[test]
    fn fewer_tasks_get_more_each() {
        let p = Platform::trc();
        assert!(per_task_bandwidth(&p, 4) > per_task_bandwidth(&p, 40));
    }

    #[test]
    fn memory_time_scales_inverse_with_efficiency() {
        let p = Platform::trc();
        let t_full = memory_time_s(&p, 40, 1e9, 1.0);
        let t_half = memory_time_s(&p, 40, 1e9, 0.5);
        assert!((t_half / t_full - 2.0).abs() < 1e-9);
    }

    #[test]
    fn memory_time_magnitude_is_sane() {
        // 1 GB at ~55.6 GB/s node bandwidth over 40 tasks: each task gets
        // ~1.39 GB/s, so 1 GB per task takes ~0.72 s.
        let p = Platform::trc();
        let t = memory_time_s(&p, 40, 1e9, 1.0);
        assert!((0.5..1.0).contains(&t), "t = {t}");
    }

    #[test]
    #[should_panic]
    fn zero_tasks_rejected() {
        let _ = per_task_bandwidth(&Platform::trc(), 0);
    }
}

//! The evaluated platforms (paper Table I) and their ground truth.
//!
//! Numbers sourced from the paper wherever it reports them:
//!
//! * topology, clocks, memory, interconnect line rate — Table I;
//! * published and sustained node memory bandwidths — Table II;
//! * two-line STREAM fit parameters `a1, a2, a3` and internodal PingPong
//!   `b, l` — Table III.
//!
//! Quantities the paper does not report are synthetic and documented
//! inline: intranodal link parameters, CSP-1 / CSP-2 Small interconnect
//! parameters (Table III lists them as N/A), noise magnitudes (chosen to
//! reproduce Table IV's variation coefficients) and prices (the paper
//! never states rates; these are plausible on-demand numbers used only for
//! *relative* cost comparisons).

/// Ground-truth two-line memory-bandwidth curve (the generative model
/// behind simulated STREAM measurements; same form as paper Eq. 8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryTruth {
    /// Core-limited slope, MB/s per thread.
    pub a1: f64,
    /// Subsystem-limited slope, MB/s per thread.
    pub a2: f64,
    /// Breakpoint, threads.
    pub a3: f64,
}

impl MemoryTruth {
    /// Node bandwidth (MB/s) at `threads` active threads.
    #[inline]
    pub fn bandwidth(&self, threads: f64) -> f64 {
        if threads < self.a3 {
            self.a1 * threads
        } else {
            self.a2 * threads + self.a3 * (self.a1 - self.a2)
        }
    }
}

/// Ground-truth point-to-point link: linear latency/bandwidth plus a mild
/// convexity that large messages exhibit in practice (the measured
/// "nonlinearity" the paper notes around its Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkTruth {
    /// Sustained bandwidth, MB/s.
    pub bandwidth_mb_s: f64,
    /// Zero-byte latency, microseconds.
    pub latency_us: f64,
    /// Convexity coefficient: extra time `nonlinearity_us_per_sqrt_byte *
    /// sqrt(bytes)` µs — zero for an ideally linear link.
    pub nonlinearity_us_per_sqrt_byte: f64,
}

impl LinkTruth {
    /// One-way transfer time for a message of `bytes`, in microseconds.
    #[inline]
    pub fn transfer_time_us(&self, bytes: f64) -> f64 {
        self.latency_us
            + bytes / self.bandwidth_mb_s // MB/s == bytes/µs
            + self.nonlinearity_us_per_sqrt_byte * bytes.max(0.0).sqrt()
    }
}

/// A complete platform description.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// Full display name.
    pub name: &'static str,
    /// Paper abbreviation (TRC, CSP-1, ...).
    pub abbrev: &'static str,
    /// CPU model string (Table I).
    pub cpu: &'static str,
    /// Clock, GHz (Table I).
    pub clock_ghz: f64,
    /// Total cores available on the instance/allocation (Table I).
    pub total_cores: usize,
    /// Physical cores per node (Table I).
    pub cores_per_node: usize,
    /// Hardware threads per core exposed to the scheduler (1 unless the
    /// instance is used hyperthreaded).
    pub vcpus_per_core: usize,
    /// Memory per node, GB (Table I).
    pub memory_per_node_gb: f64,
    /// Interconnect line rate, Gbit/s (Table I).
    pub interconnect_gbit: f64,
    /// Vendor-published maximum node memory bandwidth, MB/s (Table II).
    pub published_bandwidth_mb_s: f64,
    /// Ground-truth memory curve (Table III).
    pub memory: MemoryTruth,
    /// Ground-truth internodal link.
    pub internodal: LinkTruth,
    /// Ground-truth intranodal (shared-memory MPI) link. Synthetic: the
    /// paper measures but does not tabulate intranodal parameters.
    pub intranodal: LinkTruth,
    /// Run-to-run multiplicative noise (coefficient of variation),
    /// calibrated against Table IV.
    pub noise_cv: f64,
    /// Extra bandwidth variance past the memory knee, as a fraction —
    /// models the paper's observation that CSP-2 shows "large variance
    /// after its inflection point".
    pub shared_channel_variance: f64,
    /// On-demand price, $/node-hour. **Synthetic**; used for relative
    /// comparisons only.
    pub price_per_node_hour: f64,
}

impl Platform {
    /// Traditional compute cluster: dual-socket Broadwell, InfiniBand.
    pub fn trc() -> Self {
        Self {
            name: "Traditional Compute Cluster",
            abbrev: "TRC",
            cpu: "Intel Xeon E5-2699 v4",
            clock_ghz: 2.19,
            total_cores: 2000,
            cores_per_node: 40,
            vcpus_per_core: 1,
            memory_per_node_gb: 471.0,
            interconnect_gbit: 56.0,
            published_bandwidth_mb_s: 76_800.0,
            memory: MemoryTruth {
                a1: 6768.24,
                a2: 369.16,
                a3: 6.39,
            },
            internodal: LinkTruth {
                bandwidth_mb_s: 5066.57,
                latency_us: 2.01,
                nonlinearity_us_per_sqrt_byte: 0.002,
            },
            intranodal: LinkTruth {
                bandwidth_mb_s: 8000.0,
                latency_us: 0.6,
                nonlinearity_us_per_sqrt_byte: 0.001,
            },
            noise_cv: 0.006,
            shared_channel_variance: 0.01,
            price_per_node_hour: 2.50,
        }
    }

    /// Cloud 1: dedicated 16-core nodes.
    pub fn csp1() -> Self {
        Self {
            name: "Cloud 1 - Dedicated",
            abbrev: "CSP-1",
            cpu: "Intel Xeon E5-2667 v3",
            clock_ghz: 3.19,
            total_cores: 48,
            cores_per_node: 16,
            vcpus_per_core: 1,
            memory_per_node_gb: 16.0,
            interconnect_gbit: 10.0,
            published_bandwidth_mb_s: 68_000.0,
            memory: MemoryTruth {
                a1: 18_092.64,
                a2: -62.79,
                a3: 4.15,
            },
            // Table III lists CSP-1's link as N/A; synthetic values for a
            // dedicated 10 Gbit/s InfiniBand-class fabric.
            internodal: LinkTruth {
                bandwidth_mb_s: 1100.0,
                latency_us: 3.5,
                nonlinearity_us_per_sqrt_byte: 0.004,
            },
            intranodal: LinkTruth {
                bandwidth_mb_s: 9000.0,
                latency_us: 0.5,
                nonlinearity_us_per_sqrt_byte: 0.001,
            },
            noise_cv: 0.014,
            shared_channel_variance: 0.02,
            price_per_node_hour: 1.75,
        }
    }

    /// Cloud 2, small nodes (8 cores / 16 vCPUs).
    pub fn csp2_small() -> Self {
        Self {
            name: "Cloud 2 - Small",
            abbrev: "CSP-2 Small",
            cpu: "Intel Xeon E5-2666 v3",
            clock_ghz: 2.42,
            total_cores: 128,
            cores_per_node: 8,
            vcpus_per_core: 2,
            memory_per_node_gb: 30.0,
            interconnect_gbit: 10.0,
            // Not in Table II; synthetic (share of a 4-channel DDR4-1866
            // host seen by an 8-core instance slice).
            published_bandwidth_mb_s: 40_000.0,
            // Not in Table III; synthetic two-line curve saturating near
            // 27 GB/s at the 8-core node — deliberately below CSP-1's
            // per-core bandwidth so the Table IV ordering (CSP-1 faster
            // than CSP-2 Small at matched ranks) is preserved.
            memory: MemoryTruth {
                a1: 6500.0,
                a2: 300.0,
                a3: 4.0,
            },
            internodal: LinkTruth {
                bandwidth_mb_s: 900.0,
                latency_us: 32.0,
                nonlinearity_us_per_sqrt_byte: 0.006,
            },
            intranodal: LinkTruth {
                bandwidth_mb_s: 7000.0,
                latency_us: 0.7,
                nonlinearity_us_per_sqrt_byte: 0.001,
            },
            noise_cv: 0.012,
            shared_channel_variance: 0.03,
            price_per_node_hour: 0.40,
        }
    }

    /// Cloud 2, large nodes without the Enhanced Communicator.
    pub fn csp2() -> Self {
        Self {
            name: "Cloud 2 - No EC",
            abbrev: "CSP-2",
            cpu: "Intel Xeon Platinum 8124M",
            clock_ghz: 3.41,
            total_cores: 144,
            cores_per_node: 36,
            vcpus_per_core: 2,
            memory_per_node_gb: 144.0,
            interconnect_gbit: 25.0,
            published_bandwidth_mb_s: 162_720.0,
            memory: MemoryTruth {
                a1: 7790.02,
                a2: 1264.80,
                a3: 9.00,
            },
            internodal: LinkTruth {
                bandwidth_mb_s: 1804.84,
                latency_us: 23.59,
                nonlinearity_us_per_sqrt_byte: 0.005,
            },
            intranodal: LinkTruth {
                bandwidth_mb_s: 10_000.0,
                latency_us: 0.5,
                nonlinearity_us_per_sqrt_byte: 0.001,
            },
            noise_cv: 0.012,
            shared_channel_variance: 0.06,
            price_per_node_hour: 3.06,
        }
    }

    /// Cloud 2, large nodes with the Enhanced Communicator interconnect.
    pub fn csp2_ec() -> Self {
        Self {
            name: "Cloud 2 - With EC",
            abbrev: "CSP-2 EC",
            cpu: "Intel Xeon Platinum 8124M",
            clock_ghz: 3.40,
            total_cores: 144,
            cores_per_node: 36,
            vcpus_per_core: 2,
            memory_per_node_gb: 192.0,
            interconnect_gbit: 100.0,
            published_bandwidth_mb_s: 162_720.0,
            memory: MemoryTruth {
                a1: 7605.85,
                a2: 1269.95,
                a3: 11.00,
            },
            internodal: LinkTruth {
                bandwidth_mb_s: 2016.77,
                latency_us: 20.94,
                nonlinearity_us_per_sqrt_byte: 0.004,
            },
            intranodal: LinkTruth {
                bandwidth_mb_s: 10_000.0,
                latency_us: 0.5,
                nonlinearity_us_per_sqrt_byte: 0.001,
            },
            noise_cv: 0.010,
            shared_channel_variance: 0.05,
            price_per_node_hour: 3.89,
        }
    }

    /// The hyperthreaded CSP-2 instance (one OpenMP thread per vCPU, two
    /// vCPUs per core) used in the paper's Fig. 5 / Table III. Memory
    /// bandwidth *declines* past the knee (`a2 < 0`): hyperthreads add no
    /// bandwidth, only contention.
    pub fn csp2_hyperthreaded() -> Self {
        Self {
            name: "Cloud 2 - Hyperthreaded",
            abbrev: "CSP-2 Hyp.",
            cores_per_node: 72, // threads exposed; 36 physical cores
            vcpus_per_core: 1,  // already counted as threads here
            memory: MemoryTruth {
                a1: 8629.29,
                a2: -93.43,
                a3: 9.87,
            },
            ..Self::csp2()
        }
    }

    /// All platforms of the paper's Table I, in its column order.
    pub fn all() -> Vec<Platform> {
        vec![
            Self::trc(),
            Self::csp1(),
            Self::csp2_small(),
            Self::csp2_ec(),
            Self::csp2(),
        ]
    }

    /// The three platforms compared in the paper's Fig. 11 heatmap.
    pub fn fig11_platforms() -> Vec<Platform> {
        vec![Self::trc(), Self::csp2(), Self::csp2_ec()]
    }

    /// Maximum whole nodes this allocation provides.
    pub fn max_nodes(&self) -> usize {
        self.total_cores / self.cores_per_node
    }

    /// Nodes needed to host `ranks` tasks at one rank per core (the
    /// paper's node-based allocation assumption).
    pub fn nodes_for_ranks(&self, ranks: usize) -> usize {
        ranks.div_ceil(self.cores_per_node)
    }

    /// Ground-truth sustained node bandwidth with every core active
    /// (the "STREAM (MB/s)" row of Table II).
    pub fn full_node_bandwidth(&self) -> f64 {
        self.memory.bandwidth(self.cores_per_node as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_sustained_bandwidths_match_paper() {
        // Table II: TRC ~55,625; CSP-1 ~74,273; CSP-2 ~104,259;
        // CSP-2 EC ~115,413 MB/s. The ground-truth curves must reproduce
        // them within rounding.
        let cases = [
            (Platform::trc(), 55_625.0),
            (Platform::csp1(), 74_273.0),
            (Platform::csp2(), 104_259.0),
            (Platform::csp2_ec(), 115_413.0),
        ];
        for (p, expect) in cases {
            let got = p.full_node_bandwidth();
            assert!(
                (got - expect).abs() / expect < 0.005,
                "{}: {got} vs {expect}",
                p.abbrev
            );
        }
    }

    #[test]
    fn table2_percentage_differences_have_paper_signs() {
        // The paper reports TRC, CSP-2, CSP-2 EC sustaining *below*
        // published (−27.6%, −35.9%, −29.1%) and CSP-1 *above* (+9.2%).
        for p in Platform::all() {
            let diff = (p.full_node_bandwidth() - p.published_bandwidth_mb_s)
                / p.published_bandwidth_mb_s;
            match p.abbrev {
                "TRC" => assert!((diff - (-0.2757)).abs() < 0.01, "TRC {diff}"),
                "CSP-1" => assert!((diff - 0.0923).abs() < 0.01, "CSP-1 {diff}"),
                "CSP-2" => assert!((diff - (-0.3592)).abs() < 0.01, "CSP-2 {diff}"),
                "CSP-2 EC" => assert!((diff - (-0.2907)).abs() < 0.01, "EC {diff}"),
                _ => {}
            }
        }
    }

    #[test]
    fn ec_link_beats_non_ec_by_paper_margins() {
        // Paper: EC is 2.65 µs lower latency and 211.93 MB/s higher
        // bandwidth than CSP-2 without EC.
        let ec = Platform::csp2_ec().internodal;
        let no_ec = Platform::csp2().internodal;
        assert!((no_ec.latency_us - ec.latency_us - 2.65).abs() < 1e-9);
        assert!((ec.bandwidth_mb_s - no_ec.bandwidth_mb_s - 211.93).abs() < 1e-9);
    }

    #[test]
    fn hyperthreaded_bandwidth_declines_past_knee() {
        let hyp = Platform::csp2_hyperthreaded();
        let at_knee = hyp.memory.bandwidth(hyp.memory.a3);
        let at_full = hyp.memory.bandwidth(72.0);
        assert!(at_full < at_knee, "{at_full} !< {at_knee}");
    }

    #[test]
    fn link_time_is_latency_plus_linear_term() {
        let l = LinkTruth {
            bandwidth_mb_s: 2000.0,
            latency_us: 20.0,
            nonlinearity_us_per_sqrt_byte: 0.0,
        };
        assert!((l.transfer_time_us(0.0) - 20.0).abs() < 1e-12);
        // 2 MB at 2000 MB/s = 1000 µs plus latency.
        assert!((l.transfer_time_us(2_000_000.0) - 1020.0).abs() < 1e-9);
    }

    #[test]
    fn nonlinearity_is_convex_but_mild() {
        let l = Platform::csp2().internodal;
        let t1 = l.transfer_time_us(1_000_000.0);
        let linear = l.latency_us + 1_000_000.0 / l.bandwidth_mb_s;
        assert!(t1 > linear);
        assert!(t1 < 1.2 * linear, "nonlinearity too strong: {t1} vs {linear}");
    }

    #[test]
    fn node_math() {
        let p = Platform::trc();
        assert_eq!(p.max_nodes(), 50);
        assert_eq!(p.nodes_for_ranks(40), 1);
        assert_eq!(p.nodes_for_ranks(41), 2);
        assert_eq!(p.nodes_for_ranks(2048), 52);
    }

    #[test]
    fn all_platforms_have_sane_parameters() {
        for p in Platform::all().into_iter().chain([Platform::csp2_hyperthreaded()]) {
            assert!(p.cores_per_node > 0, "{}", p.abbrev);
            assert!(p.memory.a1 > 0.0, "{}", p.abbrev);
            assert!(p.memory.a3 > 0.0, "{}", p.abbrev);
            assert!(p.internodal.bandwidth_mb_s > 0.0, "{}", p.abbrev);
            assert!(p.internodal.latency_us >= 0.0, "{}", p.abbrev);
            assert!(p.noise_cv > 0.0 && p.noise_cv < 0.1, "{}", p.abbrev);
            assert!(p.price_per_node_hour > 0.0, "{}", p.abbrev);
            assert!(p.full_node_bandwidth() > 0.0, "{}", p.abbrev);
        }
    }
}

//! Simulated STREAM benchmark (paper Fig. 5 / Table II data source).
//!
//! Samples the platform's ground-truth two-line bandwidth curve over an
//! OpenMP-style thread sweep, with measurement noise and — for cloud
//! platforms — extra variance past the saturation knee (the paper observes
//! that CSP-2 "demonstrates large variance after its inflection point,
//! suggesting that not all cores ... have separate memory access bandwidth
//! channels").

use crate::noise::NoiseProcess;
use crate::platform::Platform;

/// One STREAM measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSample {
    /// OpenMP threads used (one per core, or per vCPU when hyperthreaded).
    pub threads: usize,
    /// Measured Copy bandwidth, MB/s.
    pub bandwidth_mb_s: f64,
}

/// Simulate a STREAM Copy sweep from 1 thread to every core on the node.
pub fn stream_sweep(platform: &Platform, seed: u64) -> Vec<StreamSample> {
    stream_sweep_threads(
        platform,
        &(1..=platform.cores_per_node).collect::<Vec<_>>(),
        seed,
    )
}

/// Simulate STREAM Copy at specific thread counts.
pub fn stream_sweep_threads(
    platform: &Platform,
    thread_counts: &[usize],
    seed: u64,
) -> Vec<StreamSample> {
    let mut base_noise = NoiseProcess::new(0.01, seed ^ 0x5742_4e43);
    let mut knee_noise = NoiseProcess::new(
        platform.shared_channel_variance.min(0.5),
        seed ^ 0x4b4e_4545,
    );
    thread_counts
        .iter()
        .map(|&threads| {
            let truth = platform.memory.bandwidth(threads as f64);
            let mut factor = base_noise.independent_factor();
            if (threads as f64) > platform.memory.a3 {
                // Channel contention past the knee: asymmetric, mostly
                // downward excursions.
                let k = knee_noise.independent_factor();
                factor *= k.min(1.02);
            }
            StreamSample {
                threads,
                bandwidth_mb_s: truth * factor,
            }
        })
        .collect()
}

/// Convert samples to the parallel `(threads, bandwidth)` arrays the
/// fitting crate consumes.
pub fn to_fit_arrays(samples: &[StreamSample]) -> (Vec<f64>, Vec<f64>) {
    (
        samples.iter().map(|s| s.threads as f64).collect(),
        samples.iter().map(|s| s.bandwidth_mb_s).collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemocloud_fitting::two_line::fit_two_line;

    #[test]
    fn sweep_covers_all_cores() {
        let p = Platform::trc();
        let sweep = stream_sweep(&p, 1);
        assert_eq!(sweep.len(), 40);
        assert_eq!(sweep[0].threads, 1);
        assert_eq!(sweep[39].threads, 40);
    }

    #[test]
    fn sweep_is_deterministic_per_seed() {
        let p = Platform::csp2();
        assert_eq!(stream_sweep(&p, 9), stream_sweep(&p, 9));
        assert_ne!(stream_sweep(&p, 9), stream_sweep(&p, 10));
    }

    #[test]
    fn measurements_track_truth() {
        let p = Platform::trc();
        for s in stream_sweep(&p, 4) {
            let truth = p.memory.bandwidth(s.threads as f64);
            assert!(
                (s.bandwidth_mb_s - truth).abs() / truth < 0.15,
                "threads {}: {} vs {}",
                s.threads,
                s.bandwidth_mb_s,
                truth
            );
        }
    }

    #[test]
    fn fit_recovers_ground_truth_from_simulated_sweep() {
        // The full paper pipeline: simulate STREAM, fit Eq. 8, compare to
        // the generating parameters.
        let p = Platform::csp2();
        let (ns, bs) = to_fit_arrays(&stream_sweep(&p, 42));
        let fit = fit_two_line(&ns, &bs).expect("fit");
        assert!((fit.a1 - p.memory.a1).abs() / p.memory.a1 < 0.15, "a1 {}", fit.a1);
        assert!((fit.a3 - p.memory.a3).abs() < 3.0, "a3 {}", fit.a3);
        // Full-node bandwidth reproduced within a few percent.
        let full = fit.eval(36.0);
        let truth = p.full_node_bandwidth();
        assert!((full - truth).abs() / truth < 0.06, "{full} vs {truth}");
    }

    #[test]
    fn csp2_noisier_past_knee_than_trc() {
        // Compare residual spread above the knee across many seeds.
        let spread = |p: &Platform| -> f64 {
            let mut total = 0.0;
            let mut count = 0;
            for seed in 0..30 {
                for s in stream_sweep(p, seed) {
                    if (s.threads as f64) > p.memory.a3 + 1.0 {
                        let truth = p.memory.bandwidth(s.threads as f64);
                        total += ((s.bandwidth_mb_s - truth) / truth).abs();
                        count += 1;
                    }
                }
            }
            total / count as f64
        };
        assert!(spread(&Platform::csp2()) > spread(&Platform::trc()));
    }

    #[test]
    fn hyperthreaded_sweep_extends_to_72() {
        let p = Platform::csp2_hyperthreaded();
        let sweep = stream_sweep(&p, 2);
        assert_eq!(sweep.last().unwrap().threads, 72);
        // Bandwidth at 72 threads is below the knee's peak.
        let knee = p.memory.bandwidth(p.memory.a3);
        assert!(sweep.last().unwrap().bandwidth_mb_s < knee * 1.05);
    }
}

//! Platform-level topology selection and the routed communication path.
//!
//! This module is the bridge between the abstract interconnect shapes in
//! `hemocloud-fabric` and the paper's platforms: it decides which
//! topology variant a platform runs ([`TopologyVariant`]), instantiates
//! it from the platform's measured link ground truth
//! ([`build_topology`]), converts the Eq. 9 halo message graph into
//! fabric [`Flow`]s with physical node endpoints ([`job_flows`]), and
//! reduces a fabric exchange back into the per-task internodal
//! communication seconds the timing engine consumes
//! ([`routed_task_comm`]).
//!
//! The scalar Eq. 12 model stays the default and the calibration
//! baseline; [`CommModel::Routed`] is the opt-in fabric-backed path (see
//! `exec::PreparedRun::new_with_comm`).
//!
//! Rate mapping: every node-facing link runs at the platform's measured
//! internodal bandwidth, and per-hop latency is half the measured
//! internodal latency — so a placement-group route (2 hops) reproduces
//! the scalar zero-byte latency exactly, while deeper routes (fat-tree
//! cross-leaf, spread cross-rack) pay proportionally more. Serialization
//! is store-and-forward per hop, which the scalar model has no concept
//! of — one of the effects `ModelCalibrator` gets to discover.

use crate::platform::Platform;
use hemocloud_decomp::halo::DecompAnalysis;
use hemocloud_decomp::placement::Placement;
use hemocloud_fabric::{
    exchange, FatTree, Flow, Link, LinkId, LinkRates, NodeId, PlacementGroup, Spread, Topology,
};

/// Which interconnect shape a pool runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyVariant {
    /// Full-bisection Clos — the TRC InfiniBand fabric.
    FatTree,
    /// One non-blocking switch — the CSP cluster-placement-group
    /// guarantee (best latency, priced accordingly).
    PlacementGroup,
    /// Racks behind 2:1-oversubscribed trunks — CSP spread placement
    /// (cheap, availability-first, slow across racks).
    Spread,
}

impl TopologyVariant {
    /// Stable name used in dashboards, reports and JSON artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            TopologyVariant::FatTree => "fat-tree",
            TopologyVariant::PlacementGroup => "placement-group",
            TopologyVariant::Spread => "spread",
        }
    }

    /// The variant a platform's hardware implies: fat-tree for the
    /// traditional cluster, placement group for cloud instances (the
    /// paper's CSP runs used HPC instance types with placement
    /// guarantees).
    pub fn default_for(platform: &Platform) -> Self {
        if platform.abbrev == "TRC" {
            TopologyVariant::FatTree
        } else {
            TopologyVariant::PlacementGroup
        }
    }
}

/// How `PreparedRun` prices communication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CommModel {
    /// The paper's scalar Eq. 12 latency/bandwidth model — the default
    /// and the calibration baseline.
    #[default]
    Scalar,
    /// Route messages through an explicit topology with per-link
    /// fair-share contention.
    Routed(TopologyVariant),
}

impl CommModel {
    /// Stable name for reports: "scalar" or the routed variant's name.
    pub fn name(&self) -> &'static str {
        match self {
            CommModel::Scalar => "scalar",
            CommModel::Routed(v) => v.name(),
        }
    }
}

/// A concrete platform topology (enum so pools and prepared runs can
/// clone and store it without trait objects).
#[derive(Debug, Clone)]
pub enum PlatformTopology {
    /// See [`FatTree`].
    FatTree(FatTree),
    /// See [`PlacementGroup`].
    PlacementGroup(PlacementGroup),
    /// See [`Spread`].
    Spread(Spread),
}

impl Topology for PlatformTopology {
    fn n_nodes(&self) -> usize {
        match self {
            PlatformTopology::FatTree(t) => t.n_nodes(),
            PlatformTopology::PlacementGroup(t) => t.n_nodes(),
            PlatformTopology::Spread(t) => t.n_nodes(),
        }
    }
    fn links(&self) -> &[Link] {
        match self {
            PlatformTopology::FatTree(t) => t.links(),
            PlatformTopology::PlacementGroup(t) => t.links(),
            PlatformTopology::Spread(t) => t.links(),
        }
    }
    fn get_route(&self, from: NodeId, to: NodeId) -> &[LinkId] {
        match self {
            PlatformTopology::FatTree(t) => t.get_route(from, to),
            PlatformTopology::PlacementGroup(t) => t.get_route(from, to),
            PlatformTopology::Spread(t) => t.get_route(from, to),
        }
    }
    fn name(&self) -> &'static str {
        match self {
            PlatformTopology::FatTree(t) => t.name(),
            PlatformTopology::PlacementGroup(t) => t.name(),
            PlatformTopology::Spread(t) => t.name(),
        }
    }
}

/// Fat-tree switch radix used for platform fabrics (8 nodes per leaf,
/// 8 spines — comfortably covers the TRC's 50-node allocation in two
/// tiers).
pub const FAT_TREE_RADIX: usize = 16;

/// Trunk capacity of spread placement relative to node bandwidth (2:1
/// oversubscription).
pub const SPREAD_TRUNK_CAPACITY: f64 = 0.5;

/// Instantiate `variant` over `n_nodes` nodes of `platform`, mapping the
/// platform's measured internodal link truth onto per-link rates (see
/// the module docs for the mapping).
pub fn build_topology(
    platform: &Platform,
    variant: TopologyVariant,
    n_nodes: usize,
) -> PlatformTopology {
    let rates = LinkRates {
        bandwidth_mb_s: platform.internodal.bandwidth_mb_s,
        hop_latency_us: platform.internodal.latency_us / 2.0,
    };
    match variant {
        TopologyVariant::FatTree => {
            PlatformTopology::FatTree(FatTree::new(n_nodes, FAT_TREE_RADIX, 2, rates))
        }
        TopologyVariant::PlacementGroup => {
            PlatformTopology::PlacementGroup(PlacementGroup::new(n_nodes, rates))
        }
        TopologyVariant::Spread => {
            // Half as many racks as nodes (min 2): spread scatters
            // consecutive allocations across racks, so two co-scheduled
            // jobs land rack-interleaved and share trunk links.
            let racks = (n_nodes / 2).max(2);
            PlatformTopology::Spread(Spread::new(n_nodes, racks, SPREAD_TRUNK_CAPACITY, rates))
        }
    }
}

/// The Eq. 9 *internodal* halo message graph of one job as fabric flows,
/// with local nodes mapped to physical topology nodes through
/// `node_map` (`node_map[local] = physical`). Flow order is
/// deterministic: by sending task, then by receiving peer (the
/// `BTreeMap` order of the message graph). `tag_base` is folded into
/// each flow's tag so concurrent jobs' flows stay distinguishable in
/// debugging dumps; the fabric itself never reads tags.
///
/// Intranodal messages (same node) stay out of the fabric — they ride
/// the scalar shared-memory link exactly as before.
pub fn job_flows(
    analysis: &DecompAnalysis,
    placement: &Placement,
    node_map: &[usize],
    comm_bytes_per_point: f64,
    tag_base: u64,
) -> Vec<Flow> {
    assert_eq!(
        node_map.len(),
        placement.n_nodes(),
        "node map must cover the placement's nodes"
    );
    let mut flows = Vec::new();
    for task in 0..analysis.n_tasks {
        let src = placement.physical_node_of(task, node_map);
        for (&peer, &points) in &analysis.messages[task] {
            let dst = placement.physical_node_of(peer, node_map);
            if src == dst {
                continue;
            }
            flows.push(Flow {
                src,
                dst,
                bytes: points as f64 * comm_bytes_per_point,
                tag: tag_base + flows.len() as u64,
            });
        }
    }
    flows
}

/// Result of routing one job's exchange through a topology.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutedComm {
    /// Internodal communication seconds per task per step: the delivery
    /// time of the task's last sent or received message, plus the
    /// per-message software overhead for every message it touches.
    pub per_task_inter_s: Vec<f64>,
    /// Completion time of the whole exchange (before software overhead).
    pub span_s: f64,
    /// Internodal bytes this job pushes through the fabric per step.
    pub bytes_per_step: f64,
}

/// Route one step's halo exchange of a job through `topology`, sharing
/// links with `background` flows (other concurrent jobs' exchanges),
/// and reduce to per-task internodal comm seconds.
///
/// A task's exchange completes when its last sent *and* received message
/// is delivered; on top of that wire time each message charges the
/// scalar model's per-message software overhead to both endpoints
/// (CPU-side cost the fabric does not model). Background flow delivery
/// times are computed but not reported — they only shape contention.
#[allow(clippy::too_many_arguments)] // the timing engine's free variables
pub fn routed_task_comm(
    topology: &PlatformTopology,
    analysis: &DecompAnalysis,
    placement: &Placement,
    node_map: &[usize],
    comm_bytes_per_point: f64,
    software_overhead_us: f64,
    background: &[Flow],
) -> RoutedComm {
    // Own flows first (so delivery indexes line up), background after.
    let mut endpoints: Vec<(usize, usize)> = Vec::new();
    let mut flows = Vec::new();
    for task in 0..analysis.n_tasks {
        let src = placement.physical_node_of(task, node_map);
        for (&peer, &points) in &analysis.messages[task] {
            let dst = placement.physical_node_of(peer, node_map);
            if src == dst {
                continue;
            }
            endpoints.push((task, peer));
            flows.push(Flow {
                src,
                dst,
                bytes: points as f64 * comm_bytes_per_point,
                tag: flows.len() as u64,
            });
        }
    }
    let n_own = flows.len();
    let bytes_per_step: f64 = flows.iter().map(|f| f.bytes).sum();
    flows.extend_from_slice(background);

    let outcome = exchange(topology, &flows);

    let mut per_task_inter_s = vec![0.0f64; analysis.n_tasks];
    let mut messages = vec![0usize; analysis.n_tasks];
    for (i, &(sender, receiver)) in endpoints.iter().enumerate().take(n_own) {
        let t = outcome.delivery_s[i];
        per_task_inter_s[sender] = per_task_inter_s[sender].max(t);
        per_task_inter_s[receiver] = per_task_inter_s[receiver].max(t);
        messages[sender] += 1;
        messages[receiver] += 1;
    }
    let overhead_s = software_overhead_us * 1e-6;
    let mut span_s = 0.0f64;
    for i in 0..n_own {
        span_s = span_s.max(outcome.delivery_s[i]);
    }
    for task in 0..analysis.n_tasks {
        per_task_inter_s[task] += messages[task] as f64 * overhead_s;
    }
    RoutedComm {
        per_task_inter_s,
        span_s,
        bytes_per_step,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemocloud_decomp::rcb::RcbPartition;
    use hemocloud_geometry::anatomy::CylinderSpec;

    fn analysis_and_placement(ranks: usize, per_node: usize) -> (DecompAnalysis, Placement) {
        let grid = CylinderSpec::default().with_resolution(10).build();
        let partition = RcbPartition::new(&grid, ranks);
        let analysis = DecompAnalysis::analyze(&grid, &partition);
        let placement = Placement::contiguous(ranks, per_node);
        (analysis, placement)
    }

    #[test]
    fn default_variants_follow_the_hardware() {
        assert_eq!(
            TopologyVariant::default_for(&Platform::trc()),
            TopologyVariant::FatTree
        );
        assert_eq!(
            TopologyVariant::default_for(&Platform::csp2()),
            TopologyVariant::PlacementGroup
        );
        assert_eq!(CommModel::default(), CommModel::Scalar);
        assert_eq!(CommModel::Routed(TopologyVariant::Spread).name(), "spread");
    }

    #[test]
    fn placement_group_route_reproduces_scalar_latency() {
        let p = Platform::csp2();
        let topo = build_topology(&p, TopologyVariant::PlacementGroup, 4);
        let route = topo.get_route(0, 3);
        let total_latency_us: f64 = route.iter().map(|&l| topo.links()[l].latency_us).sum();
        hemocloud_rt::float::assert_close(total_latency_us, p.internodal.latency_us, 0.0, 2);
    }

    #[test]
    fn job_flows_cover_exactly_the_internodal_graph() {
        let (analysis, placement) = analysis_and_placement(16, 4);
        let bpp = 152.0;
        let node_map: Vec<usize> = (0..placement.n_nodes()).collect();
        let flows = job_flows(&analysis, &placement, &node_map, bpp, 0);
        let mut expect = 0.0;
        for task in 0..analysis.n_tasks {
            for (&peer, &points) in &analysis.messages[task] {
                if placement.is_internodal(task, peer) {
                    expect += points as f64 * bpp;
                }
            }
        }
        assert_eq!(flows.iter().map(|f| f.bytes).sum::<f64>(), expect);
        assert!(flows.iter().all(|f| f.src != f.dst));
    }

    #[test]
    fn node_map_moves_flows_onto_physical_nodes() {
        let (analysis, placement) = analysis_and_placement(8, 4);
        assert_eq!(placement.n_nodes(), 2);
        let flows = job_flows(&analysis, &placement, &[5, 9], 152.0, 0);
        assert!(!flows.is_empty());
        for f in &flows {
            assert!(f.src == 5 || f.src == 9);
            assert!(f.dst == 5 || f.dst == 9);
        }
    }

    #[test]
    fn background_traffic_slows_routed_comm() {
        let p = Platform::csp2();
        let (analysis, placement) = analysis_and_placement(8, 4);
        // Pool of 4 nodes, spread across 2 racks; our job on physical
        // nodes {0, 1} (different racks), the background tenant on
        // {2, 3} (the same racks — shares both trunks).
        let topo = build_topology(&p, TopologyVariant::Spread, 4);
        let node_map = [0usize, 1];
        let isolated =
            routed_task_comm(&topo, &analysis, &placement, &node_map, 152.0, 1.5, &[]);
        let tenant = job_flows(&analysis, &placement, &[2, 3], 152.0, 1 << 32);
        let contended =
            routed_task_comm(&topo, &analysis, &placement, &node_map, 152.0, 1.5, &tenant);
        assert!(contended.span_s > isolated.span_s);
        assert_eq!(contended.bytes_per_step, isolated.bytes_per_step);
        let worst_iso = isolated
            .per_task_inter_s
            .iter()
            .fold(0.0f64, |a, &b| a.max(b));
        let worst_con = contended
            .per_task_inter_s
            .iter()
            .fold(0.0f64, |a, &b| a.max(b));
        assert!(worst_con > worst_iso, "{worst_con} !> {worst_iso}");
    }

    #[test]
    fn routed_comm_is_deterministic() {
        let p = Platform::trc();
        let (analysis, placement) = analysis_and_placement(80, 40);
        let topo = build_topology(&p, TopologyVariant::FatTree, 2);
        let node_map: Vec<usize> = (0..placement.n_nodes()).collect();
        let a = routed_task_comm(&topo, &analysis, &placement, &node_map, 152.0, 1.5, &[]);
        let b = routed_task_comm(&topo, &analysis, &placement, &node_map, 152.0, 1.5, &[]);
        assert_eq!(a, b);
    }
}

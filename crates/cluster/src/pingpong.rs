//! Simulated Intel-MPI-Benchmark-style PingPong (paper Fig. 6 / Table III
//! data source).
//!
//! Generates round-trip-halved communication times over a message-size
//! sweep for intranodal and internodal rank pairs, with measurement noise.
//! The fitting pipeline then recovers the linear `t = m/b + l` model
//! exactly the way the paper does: latency pinned to the zero-byte
//! measurement, bandwidth fit to all points.

use crate::network::LinkKind;
use crate::noise::NoiseProcess;
use crate::platform::Platform;
use hemocloud_fitting::linear::{fit_line_fixed_intercept, LineFit};

/// One PingPong measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PingPongSample {
    /// Message size, bytes.
    pub bytes: usize,
    /// One-way time, microseconds.
    pub time_us: f64,
}

/// The IMB default message-size ladder: 0 plus powers of two through 4 MB.
pub fn default_message_sizes() -> Vec<usize> {
    let mut sizes = vec![0usize];
    let mut s = 1usize;
    while s <= 4 * 1024 * 1024 {
        sizes.push(s);
        s *= 2;
    }
    sizes
}

/// Simulate a PingPong sweep over `sizes` for the given link kind.
pub fn pingpong_sweep(
    platform: &Platform,
    kind: LinkKind,
    sizes: &[usize],
    seed: u64,
) -> Vec<PingPongSample> {
    let mut noise = NoiseProcess::new(0.02, seed ^ 0x5049_4e47);
    let link = crate::network::link_of(platform, kind);
    sizes
        .iter()
        .map(|&bytes| PingPongSample {
            bytes,
            time_us: link.transfer_time_us(bytes as f64) * noise.independent_factor(),
        })
        .collect()
}

/// Fitted communication parameters in the paper's units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommFit {
    /// Bandwidth, MB/s.
    pub bandwidth_mb_s: f64,
    /// Latency, microseconds (the zero-byte time, per the paper's
    /// convention).
    pub latency_us: f64,
    /// The underlying line fit (time in µs vs. bytes).
    pub line: LineFit,
}

/// Fit Eq. 12 to a PingPong sweep with the paper's convention: "latency is
/// the communication time for 0 bytes and bandwidth depends on all data
/// points".
///
/// Returns `None` if the sweep lacks a zero-byte sample or has no nonzero
/// sizes.
pub fn fit_pingpong(samples: &[PingPongSample]) -> Option<CommFit> {
    let latency_us = samples.iter().find(|s| s.bytes == 0)?.time_us;
    let xs: Vec<f64> = samples.iter().map(|s| s.bytes as f64).collect();
    let ys: Vec<f64> = samples.iter().map(|s| s.time_us).collect();
    let line = fit_line_fixed_intercept(&xs, &ys, latency_us)?;
    if line.slope <= 0.0 {
        return None;
    }
    Some(CommFit {
        bandwidth_mb_s: 1.0 / line.slope, // µs/byte → bytes/µs == MB/s
        latency_us,
        line,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_starts_at_zero_and_doubles() {
        let sizes = default_message_sizes();
        assert_eq!(sizes[0], 0);
        assert_eq!(sizes[1], 1);
        assert_eq!(*sizes.last().unwrap(), 4 * 1024 * 1024);
        for w in sizes[1..].windows(2) {
            assert_eq!(w[1], w[0] * 2);
        }
    }

    #[test]
    fn sweep_is_monotone_in_size_modulo_noise() {
        let p = Platform::csp2();
        let samples = pingpong_sweep(&p, LinkKind::Internodal, &default_message_sizes(), 3);
        // Large messages take much longer than small ones (4 MB at ~1.8
        // GB/s is ~2.3 ms against a ~24 µs zero-byte latency).
        assert!(samples.last().unwrap().time_us > 50.0 * samples[0].time_us);
    }

    #[test]
    fn fit_recovers_link_ground_truth() {
        let p = Platform::csp2();
        let samples = pingpong_sweep(&p, LinkKind::Internodal, &default_message_sizes(), 17);
        let fit = fit_pingpong(&samples).expect("fit");
        let truth = &p.internodal;
        assert!(
            (fit.bandwidth_mb_s - truth.bandwidth_mb_s).abs() / truth.bandwidth_mb_s < 0.12,
            "bandwidth {} vs {}",
            fit.bandwidth_mb_s,
            truth.bandwidth_mb_s
        );
        assert!(
            (fit.latency_us - truth.latency_us).abs() / truth.latency_us < 0.15,
            "latency {} vs {}",
            fit.latency_us,
            truth.latency_us
        );
    }

    #[test]
    fn ec_fit_beats_non_ec_fit() {
        // The paper's interconnect comparison must survive the noisy
        // measurement + fit pipeline.
        let sizes = default_message_sizes();
        let ec = fit_pingpong(&pingpong_sweep(
            &Platform::csp2_ec(),
            LinkKind::Internodal,
            &sizes,
            5,
        ))
        .unwrap();
        let no_ec = fit_pingpong(&pingpong_sweep(
            &Platform::csp2(),
            LinkKind::Internodal,
            &sizes,
            5,
        ))
        .unwrap();
        assert!(ec.bandwidth_mb_s > no_ec.bandwidth_mb_s);
        assert!(ec.latency_us < no_ec.latency_us);
    }

    #[test]
    fn fit_requires_zero_byte_sample() {
        let p = Platform::trc();
        let samples = pingpong_sweep(&p, LinkKind::Internodal, &[1024, 2048], 1);
        assert!(fit_pingpong(&samples).is_none());
    }

    #[test]
    fn pinned_latency_underestimates_large_messages() {
        // The paper: defining latency as the zero-byte time underestimates
        // at larger sizes (the real curve is convex) but avoids
        // overestimating small messages.
        let p = Platform::csp2();
        let sizes = default_message_sizes();
        let samples = pingpong_sweep(&p, LinkKind::Internodal, &sizes, 23);
        let fit = fit_pingpong(&samples).unwrap();
        let largest = samples.last().unwrap();
        let predicted = fit.line.eval(largest.bytes as f64);
        assert!(
            predicted < largest.time_us * 1.02,
            "prediction {predicted} should not exceed measured {}",
            largest.time_us
        );
    }
}

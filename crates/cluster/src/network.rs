//! Interconnect timing helpers.
//!
//! Thin wrappers over the platform link ground truth that choose the right
//! link for a message (intranodal vs. internodal) and convert units. The
//! message-size sweep generator for the PingPong benchmark lives in
//! [`crate::pingpong`].

use crate::platform::{LinkTruth, Platform};

/// Which fabric a message crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// Both endpoints on one node (shared memory).
    Intranodal,
    /// Endpoints on different nodes (interconnect).
    Internodal,
}

/// The ground-truth link of a platform for a message kind.
pub fn link_of(platform: &Platform, kind: LinkKind) -> &LinkTruth {
    match kind {
        LinkKind::Intranodal => &platform.intranodal,
        LinkKind::Internodal => &platform.internodal,
    }
}

/// One-way transfer time in **seconds** for `bytes` over the given link
/// kind, including a per-message software overhead (MPI stack costs beyond
/// wire latency — one of the deliberately unmodeled terms; see
/// [`crate::exec`]).
pub fn message_time_s(
    platform: &Platform,
    kind: LinkKind,
    bytes: f64,
    software_overhead_us: f64,
) -> f64 {
    (link_of(platform, kind).transfer_time_us(bytes) + software_overhead_us) * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intranodal_beats_internodal() {
        let p = Platform::csp2();
        for bytes in [0.0, 1e3, 1e6] {
            assert!(
                message_time_s(&p, LinkKind::Intranodal, bytes, 0.0)
                    < message_time_s(&p, LinkKind::Internodal, bytes, 0.0),
                "bytes = {bytes}"
            );
        }
    }

    #[test]
    fn overhead_adds_linearly() {
        let p = Platform::trc();
        let base = message_time_s(&p, LinkKind::Internodal, 1000.0, 0.0);
        let with = message_time_s(&p, LinkKind::Internodal, 1000.0, 1.5);
        assert!((with - base - 1.5e-6).abs() < 1e-15);
    }

    #[test]
    fn trc_latency_advantage_over_csp2() {
        // The paper: traditional clusters have far lower internodal latency
        // than CSPs (2.01 µs vs 23.59 µs).
        let trc = message_time_s(&Platform::trc(), LinkKind::Internodal, 0.0, 0.0);
        let csp2 = message_time_s(&Platform::csp2(), LinkKind::Internodal, 0.0, 0.0);
        assert!(csp2 / trc > 10.0, "ratio {}", csp2 / trc);
    }
}

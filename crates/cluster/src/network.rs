//! Interconnect timing helpers.
//!
//! Thin wrappers over the platform link ground truth that choose the right
//! link for a message (intranodal vs. internodal) and convert units. The
//! message-size sweep generator for the PingPong benchmark lives in
//! [`crate::pingpong`].

use crate::platform::{LinkTruth, Platform};

/// Which fabric a message crosses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkKind {
    /// Both endpoints on one node (shared memory).
    Intranodal,
    /// Endpoints on different nodes (interconnect).
    Internodal,
}

/// The ground-truth link of a platform for a message kind.
pub fn link_of(platform: &Platform, kind: LinkKind) -> &LinkTruth {
    match kind {
        LinkKind::Intranodal => &platform.intranodal,
        LinkKind::Internodal => &platform.internodal,
    }
}

/// One-way transfer time in **seconds** for `bytes` over the given link
/// kind, including a per-message software overhead (MPI stack costs beyond
/// wire latency — one of the deliberately unmodeled terms; see
/// [`crate::exec`]).
///
/// Non-finite or negative `bytes`/`software_overhead_us` are a caller bug
/// (the same hygiene rule as the fitting pipeline's non-finite guards):
/// debug builds assert, release builds clamp to 0 so a poisoned byte
/// count degrades to a latency-only message instead of propagating NaN
/// into step times and reports.
pub fn message_time_s(
    platform: &Platform,
    kind: LinkKind,
    bytes: f64,
    software_overhead_us: f64,
) -> f64 {
    debug_assert!(
        bytes.is_finite() && bytes >= 0.0,
        "message bytes must be finite and non-negative, got {bytes}"
    );
    debug_assert!(
        software_overhead_us.is_finite() && software_overhead_us >= 0.0,
        "software overhead must be finite and non-negative, got {software_overhead_us}"
    );
    let bytes = if bytes.is_finite() { bytes.max(0.0) } else { 0.0 };
    let overhead_us = if software_overhead_us.is_finite() {
        software_overhead_us.max(0.0)
    } else {
        0.0
    };
    (link_of(platform, kind).transfer_time_us(bytes) + overhead_us) * 1e-6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intranodal_beats_internodal() {
        let p = Platform::csp2();
        for bytes in [0.0, 1e3, 1e6] {
            assert!(
                message_time_s(&p, LinkKind::Intranodal, bytes, 0.0)
                    < message_time_s(&p, LinkKind::Internodal, bytes, 0.0),
                "bytes = {bytes}"
            );
        }
    }

    #[test]
    fn overhead_adds_linearly() {
        let p = Platform::trc();
        let base = message_time_s(&p, LinkKind::Internodal, 1000.0, 0.0);
        let with = message_time_s(&p, LinkKind::Internodal, 1000.0, 1.5);
        // The difference is ~1.5e-6 s, where an ad-hoc 1e-15 absolute pin
        // was really a ~4-ULP bound in disguise; say so explicitly.
        hemocloud_rt::float::assert_close(with - base, 1.5e-6, 0.0, 4);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "message bytes must be finite")]
    fn non_finite_bytes_assert_in_debug() {
        message_time_s(&Platform::trc(), LinkKind::Internodal, f64::NAN, 0.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "software overhead must be finite")]
    fn negative_overhead_asserts_in_debug() {
        message_time_s(&Platform::trc(), LinkKind::Internodal, 1.0, -2.0);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn poisoned_inputs_clamp_in_release() {
        let p = Platform::trc();
        let clean = message_time_s(&p, LinkKind::Internodal, 0.0, 0.0);
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -10.0] {
            let t = message_time_s(&p, LinkKind::Internodal, bad, 0.0);
            assert!(t.is_finite(), "bytes = {bad}");
            assert_eq!(t, clean, "bad bytes must degrade to a zero-byte message");
            let t = message_time_s(&p, LinkKind::Internodal, 0.0, bad);
            assert!(t.is_finite(), "overhead = {bad}");
            assert_eq!(t, clean, "bad overhead must degrade to none");
        }
    }

    #[test]
    fn trc_latency_advantage_over_csp2() {
        // The paper: traditional clusters have far lower internodal latency
        // than CSPs (2.01 µs vs 23.59 µs).
        let trc = message_time_s(&Platform::trc(), LinkKind::Internodal, 0.0, 0.0);
        let csp2 = message_time_s(&Platform::csp2(), LinkKind::Internodal, 0.0, 0.0);
        assert!(csp2 / trc > 10.0, "ratio {}", csp2 / trc);
    }
}

//! Simulated execution platforms: the paper's cloud instances and
//! traditional cluster, reproduced as parameterized timing models.
//!
//! The paper's experiments ran on AWS/Azure HPC instances and an on-premise
//! Intel cluster; none of that hardware is available here, so this crate
//! *is* the substituted testbed (DESIGN.md §2). Each [`platform::Platform`]
//! carries the paper's own measured constants as ground truth — Table I
//! (topology), Table II (sustained bandwidths) and Table III (two-line
//! memory fits, interconnect bandwidth/latency) — so that simulated
//! microbenchmarks and workload runs have the published shape.
//!
//! Crucially, the execution engine ([`exec`]) includes effects the
//! performance model deliberately does **not** know about: LBM kernels
//! sustain less than STREAM-copy bandwidth, each message pays a software
//! overhead beyond wire latency, every step pays a synchronization cost,
//! and throughput carries temporally correlated noise ([`noise`]). Those
//! unmodeled terms reproduce the paper's headline observation that both
//! performance models consistently overpredict (its Figs. 7-8).

pub mod exec;
pub mod memory;
pub mod network;
pub mod noise;
pub mod pingpong;
pub mod platform;
pub mod pool;
pub mod pricing;
pub mod stream_bench;
pub mod topology;

pub use exec::{PreparedRun, SimulatedRun, WorkloadTiming};
pub use platform::Platform;
pub use pool::NodePool;
pub use pricing::PriceSheet;
pub use topology::{build_topology, CommModel, PlatformTopology, TopologyVariant};

//! The workload timing engine: "running" a decomposed LBM simulation on a
//! simulated platform.
//!
//! This is the measurement side of every model-vs-actual experiment
//! (paper Figs. 3, 4, 7, 8 and Table IV). Per timestep, each task pays
//!
//! * a **memory** term: its Eq. 9 byte count — inflated by a traffic
//!   factor for effects byte-counting misses (write-allocate, partial
//!   lines) — divided by its even share of the node's two-line bandwidth
//!   at an LBM-vs-STREAM efficiency < 1;
//! * a **communication** term: its halo messages over the intranodal or
//!   internodal link, each carrying a software overhead beyond wire
//!   latency, serialized per task;
//! * a per-step **synchronization overhead**; and the step time is the
//!   maximum over tasks, scaled by temporally correlated noise.
//!
//! The traffic factor, efficiency, software overhead and sync cost are the
//! *deliberately unmodeled* terms ([`Overheads`]): the performance model
//! divides plain byte counts by STREAM bandwidth and PingPong-fit link
//! parameters, so it consistently overpredicts these simulated
//! measurements — reproducing the paper's central observation.

use crate::memory;
use crate::network::{message_time_s, LinkKind};
use crate::noise::NoiseProcess;
use crate::platform::Platform;
use hemocloud_decomp::halo::{bytes_per_task, DecompAnalysis};
use hemocloud_decomp::placement::Placement;
use hemocloud_decomp::rcb::RcbPartition;
use hemocloud_geometry::voxel::VoxelGrid;
use hemocloud_lbm::access_profile::AccessProfile;
use hemocloud_lbm::kernel::KernelConfig;

/// Real-machine effects the performance model does not know about.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overheads {
    /// Fraction of STREAM-copy bandwidth LBM kernels sustain (< 1: gather
    /// access patterns, TLB pressure).
    pub lbm_bandwidth_efficiency: f64,
    /// Actual memory traffic relative to counted bytes (> 1:
    /// write-allocate fills, partial cache lines on wall points).
    pub memory_traffic_factor: f64,
    /// Per-message MPI software cost beyond wire latency, µs.
    pub message_software_overhead_us: f64,
    /// Per-step synchronization/imbalance cost, µs.
    pub step_sync_overhead_us: f64,
    /// Cores per node assumed busy with *other tenants'* work — the
    /// shared-node scenario of the paper's Discussion ("memory bandwidth
    /// usage by other users on the node ... may be an assumption of full
    /// or partial usage of the other cores"). 0 = node-exclusive
    /// allocation, the paper's default.
    pub cotenant_cores_per_node: usize,
}

impl Default for Overheads {
    fn default() -> Self {
        Self {
            lbm_bandwidth_efficiency: 0.80,
            memory_traffic_factor: 1.30,
            message_software_overhead_us: 1.5,
            step_sync_overhead_us: 8.0,
            cotenant_cores_per_node: 0,
        }
    }
}

impl Overheads {
    /// An idealized machine with none of the unmodeled effects — useful in
    /// tests to verify the engine converges to the model's own arithmetic.
    pub fn none() -> Self {
        Self {
            lbm_bandwidth_efficiency: 1.0,
            memory_traffic_factor: 1.0,
            message_software_overhead_us: 0.0,
            step_sync_overhead_us: 0.0,
            cotenant_cores_per_node: 0,
        }
    }
}

/// Layout/loop-structure efficiency of a kernel variant on CPUs, relative
/// to the best variant. Another *unmodeled* effect: byte counting cannot
/// see it, but measurements can — the paper observes AoS beating SoA for
/// the AB pattern ("expected ... for CPUs") yet not for AA, and the AA
/// advantage appearing "only for the unrolled kernels". Constants are
/// empirical, in line with the CPU layout studies the paper cites.
pub fn kernel_cpu_efficiency(config: &KernelConfig) -> f64 {
    use hemocloud_lbm::kernel::{Layout, Propagation};
    let layout = match (config.propagation, config.layout) {
        // AB streams strided gathers: AoS keeps each cell's 19 values on
        // adjacent lines, SoA scatters them across 19 pages — a large
        // enough gap that AoS wins even without unrolling (paper Fig. 4b).
        (Propagation::Ab, Layout::Aos) => 1.0,
        (Propagation::Ab, Layout::Soa) => 0.80,
        // AA's even step is purely cell-local, which suits SoA's
        // vectorization; the layouts roughly tie (paper Fig. 4a).
        (Propagation::Aa, Layout::Soa) => 1.0,
        (Propagation::Aa, Layout::Aos) => 0.96,
    };
    let loop_structure = if config.unrolled { 1.0 } else { 0.90 };
    layout * loop_structure
}

/// A fully described workload ready for timing.
#[derive(Debug, Clone)]
pub struct WorkloadTiming<'a> {
    /// Communication census of the decomposition.
    pub analysis: &'a DecompAnalysis,
    /// Task-to-node placement.
    pub placement: &'a Placement,
    /// Counted (model-level) bytes per task per step (Eq. 9).
    pub task_bytes: &'a [f64],
    /// Bytes exchanged per boundary point per message (profile's
    /// `n_point_comm_bytes`).
    pub comm_bytes_per_point: f64,
    /// Timesteps to run.
    pub steps: u64,
}

/// The outcome of a simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedRun {
    /// Seconds per timestep (after noise).
    pub step_time_s: f64,
    /// Total wall-clock seconds.
    pub total_time_s: f64,
    /// Throughput in millions of fluid-point updates per second (Eq. 7).
    pub mflups: f64,
    /// Memory time of the critical (slowest) task, seconds/step.
    pub critical_mem_s: f64,
    /// Intranodal communication time of the critical task, seconds/step.
    pub critical_intra_s: f64,
    /// Internodal communication time of the critical task, seconds/step.
    pub critical_inter_s: f64,
    /// Nodes occupied.
    pub nodes_used: usize,
    /// The noise factor applied.
    pub noise_factor: f64,
}

/// Time a workload on a platform.
///
/// `time_h` is the wall-clock hour of the run (temporally correlated noise
/// — the Table IV study samples every 6 hours); `seed` fixes the noise
/// stream.
///
/// # Panics
/// Panics if the placement spans more nodes than the platform has, or if
/// array lengths disagree.
pub fn simulate(
    platform: &Platform,
    workload: &WorkloadTiming<'_>,
    overheads: &Overheads,
    seed: u64,
    time_h: f64,
) -> SimulatedRun {
    let n_tasks = workload.analysis.n_tasks;
    assert_eq!(workload.task_bytes.len(), n_tasks, "task_bytes length");
    assert_eq!(workload.placement.n_tasks(), n_tasks, "placement size");
    let nodes_used = workload.placement.n_nodes();
    assert!(
        nodes_used <= platform.max_nodes(),
        "{} nodes requested, platform {} has {}",
        nodes_used,
        platform.abbrev,
        platform.max_nodes()
    );

    let tasks_per_node = workload.placement.tasks_per_node();

    let mut worst_total = 0.0f64;
    let mut critical = (0.0, 0.0, 0.0);
    for task in 0..n_tasks {
        let node = workload.placement.node_of(task);
        // Co-tenants saturate memory channels alongside our ranks: the
        // node curve is evaluated at the total active core count and our
        // task gets one even share of it.
        let on_node = (tasks_per_node[node] + overheads.cotenant_cores_per_node)
            .min(platform.cores_per_node)
            .max(1);
        let t_mem = memory::memory_time_s(
            platform,
            on_node,
            workload.task_bytes[task] * overheads.memory_traffic_factor,
            overheads.lbm_bandwidth_efficiency,
        );

        let mut t_intra = 0.0;
        let mut t_inter = 0.0;
        for (&peer, &points) in &workload.analysis.messages[task] {
            let bytes = points as f64 * workload.comm_bytes_per_point;
            let kind = if workload.placement.is_internodal(task, peer) {
                LinkKind::Internodal
            } else {
                LinkKind::Intranodal
            };
            // Send and matching receive, serialized per task (the paper's
            // factor of two in Eq. 13).
            let t = 2.0 * message_time_s(
                platform,
                kind,
                bytes,
                overheads.message_software_overhead_us,
            );
            match kind {
                LinkKind::Intranodal => t_intra += t,
                LinkKind::Internodal => t_inter += t,
            }
        }

        let total = t_mem + t_intra + t_inter;
        if total > worst_total {
            worst_total = total;
            critical = (t_mem, t_intra, t_inter);
        }
    }

    let mut noise = NoiseProcess::new(platform.noise_cv, seed);
    let noise_factor = noise.factor_at(time_h);
    let step_time_s =
        (worst_total + overheads.step_sync_overhead_us * 1e-6) * noise_factor;
    let total_time_s = step_time_s * workload.steps as f64;
    let updates = workload.analysis.total_points as f64 * workload.steps as f64;

    SimulatedRun {
        step_time_s,
        total_time_s,
        mflups: if total_time_s > 0.0 {
            updates / total_time_s / 1e6
        } else {
            0.0
        },
        critical_mem_s: critical.0,
        critical_intra_s: critical.1,
        critical_inter_s: critical.2,
        nodes_used,
        noise_factor,
    }
}

/// A decomposed workload pinned to one platform, ready to run in
/// resumable time slices.
///
/// The expensive, step-count-independent preparation (RCB partition, halo
/// census, placement, per-task byte counts, kernel-variant overheads) is
/// done once in [`PreparedRun::new`]; [`PreparedRun::run_slice`] then
/// times any window of timesteps at any wall-clock hour. A campaign
/// scheduler uses this to advance a job slice by slice — checking guards
/// and injecting faults between slices — without re-decomposing the
/// geometry, and with the temporally correlated noise still following the
/// simulated clock.
#[derive(Debug, Clone)]
pub struct PreparedRun {
    platform: Platform,
    analysis: DecompAnalysis,
    placement: Placement,
    task_bytes: Vec<f64>,
    comm_bytes_per_point: f64,
    /// Effective overheads with the kernel variant's CPU efficiency
    /// already folded in.
    overheads: Overheads,
}

impl PreparedRun {
    /// Decompose `grid` into `ranks` fluid-balanced RCB subdomains at one
    /// rank per core (HARVEY's load-balancing style) and derive byte
    /// counts from the kernel's access profile.
    ///
    /// Returns `None` when the rank count is zero, exceeds the platform's
    /// cores, or exceeds the geometry's fluid-point count.
    pub fn new(
        platform: &Platform,
        grid: &VoxelGrid,
        config: &KernelConfig,
        ranks: usize,
        overheads: &Overheads,
    ) -> Option<Self> {
        if ranks == 0 || ranks > platform.total_cores || ranks > grid.fluid_count() {
            return None;
        }
        let partition = RcbPartition::new(grid, ranks);
        let analysis = DecompAnalysis::analyze(grid, &partition);
        let placement = Placement::contiguous(ranks, platform.cores_per_node);
        let avg_links = measured_avg_solid_links(grid);
        let profile = AccessProfile::for_kernel(config, avg_links);
        let task_bytes =
            bytes_per_task(grid, &partition, profile.bulk_bytes, profile.wall_bytes);
        Some(Self {
            platform: platform.clone(),
            analysis,
            placement,
            task_bytes,
            comm_bytes_per_point: profile.boundary_point_bytes,
            overheads: Overheads {
                lbm_bandwidth_efficiency: overheads.lbm_bandwidth_efficiency
                    * kernel_cpu_efficiency(config),
                ..*overheads
            },
        })
    }

    /// Whole nodes the run occupies.
    pub fn nodes(&self) -> usize {
        self.placement.n_nodes()
    }

    /// Ranks (tasks) the run uses.
    pub fn ranks(&self) -> usize {
        self.analysis.n_tasks
    }

    /// Fluid points updated per timestep.
    pub fn fluid_points(&self) -> usize {
        self.analysis.total_points
    }

    /// Time a window of `steps` timesteps starting at wall-clock hour
    /// `time_h`. Slices of the same prepared run are independent noise
    /// draws (`seed` picks the stream; `time_h` moves the temporally
    /// correlated component), so resuming a run hour by hour reproduces
    /// the same variability a monolithic run would have seen.
    pub fn run_slice(&self, steps: u64, seed: u64, time_h: f64) -> SimulatedRun {
        let workload = WorkloadTiming {
            analysis: &self.analysis,
            placement: &self.placement,
            task_bytes: &self.task_bytes,
            comm_bytes_per_point: self.comm_bytes_per_point,
            steps,
        };
        simulate(&self.platform, &workload, &self.overheads, seed, time_h)
    }
}

/// Convenience wrapper: decompose `grid` into `ranks` fluid-balanced RCB
/// subdomains at one rank per core (HARVEY's load-balancing style), derive
/// byte counts from the kernel's access profile, and time `steps`
/// timesteps on `platform`.
///
/// Returns `None` when the rank count exceeds the platform's cores or the
/// geometry's fluid-point count.
#[allow(clippy::too_many_arguments)] // mirrors the experiment's free variables
pub fn simulate_geometry(
    platform: &Platform,
    grid: &VoxelGrid,
    config: &KernelConfig,
    ranks: usize,
    steps: u64,
    overheads: &Overheads,
    seed: u64,
    time_h: f64,
) -> Option<SimulatedRun> {
    PreparedRun::new(platform, grid, config, ranks, overheads)
        .map(|prepared| prepared.run_slice(steps, seed, time_h))
}

/// Average solid-link count over wall cells of a grid (see
/// `hemocloud_lbm::access_profile::average_solid_links` for the mesh-side
/// equivalent).
pub fn measured_avg_solid_links(grid: &VoxelGrid) -> f64 {
    use hemocloud_geometry::classify::solid_link_count;
    use hemocloud_geometry::voxel::CellType;
    let mut total = 0usize;
    let mut walls = 0usize;
    for (x, y, z, c) in grid.iter_cells() {
        if c == CellType::Wall {
            total += solid_link_count(grid, x, y, z);
            walls += 1;
        }
    }
    if walls == 0 {
        0.0
    } else {
        total as f64 / walls as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemocloud_geometry::anatomy::CylinderSpec;
    use hemocloud_geometry::voxel::CellType;

    fn cylinder() -> VoxelGrid {
        CylinderSpec::default().with_resolution(10).build()
    }

    #[test]
    fn more_ranks_run_faster_on_large_workloads() {
        // Strong scaling pays off only while per-task memory time dominates
        // message latency, so use a workload large enough for 64 ranks.
        let g = CylinderSpec::default().with_resolution(36).build();
        let p = Platform::csp2();
        let cfg = KernelConfig::harvey();
        let oh = Overheads::default();
        let r8 = simulate_geometry(&p, &g, &cfg, 8, 100, &oh, 1, 0.0).unwrap();
        let r64 = simulate_geometry(&p, &g, &cfg, 64, 100, &oh, 1, 0.0).unwrap();
        assert!(
            r64.mflups > r8.mflups,
            "64 ranks {} !> 8 ranks {}",
            r64.mflups,
            r8.mflups
        );
    }

    #[test]
    fn tiny_workloads_roll_over_at_high_rank_counts() {
        // The flip side: on a small domain, internodal latency beats the
        // shrinking memory share and scaling inverts — the accelerated
        // drop the paper sees at high MPI ranks (its Figs. 7-8).
        let g = cylinder();
        let p = Platform::csp2();
        let cfg = KernelConfig::harvey();
        let oh = Overheads::default();
        let r8 = simulate_geometry(&p, &g, &cfg, 8, 100, &oh, 1, 0.0).unwrap();
        let r64 = simulate_geometry(&p, &g, &cfg, 64, 100, &oh, 1, 0.0).unwrap();
        assert!(
            r8.mflups > r64.mflups,
            "expected rollover: 8 ranks {} vs 64 ranks {}",
            r8.mflups,
            r64.mflups
        );
    }

    #[test]
    fn single_rank_has_no_communication() {
        let g = cylinder();
        let r = simulate_geometry(
            &Platform::trc(),
            &g,
            &KernelConfig::harvey(),
            1,
            10,
            &Overheads::default(),
            1,
            0.0,
        )
        .unwrap();
        assert_eq!(r.critical_intra_s, 0.0);
        assert_eq!(r.critical_inter_s, 0.0);
        assert!(r.critical_mem_s > 0.0);
        assert_eq!(r.nodes_used, 1);
    }

    #[test]
    fn internodal_comm_appears_past_one_node() {
        let g = cylinder();
        let p = Platform::csp1(); // 16 cores/node
        let r = simulate_geometry(
            &p,
            &g,
            &KernelConfig::harvey(),
            32,
            10,
            &Overheads::default(),
            1,
            0.0,
        )
        .unwrap();
        assert_eq!(r.nodes_used, 2);
        assert!(r.critical_inter_s > 0.0);
    }

    #[test]
    fn overheads_slow_the_machine_down() {
        let g = cylinder();
        let p = Platform::csp2();
        let cfg = KernelConfig::harvey();
        let ideal = simulate_geometry(&p, &g, &cfg, 16, 10, &Overheads::none(), 1, 0.0).unwrap();
        let real =
            simulate_geometry(&p, &g, &cfg, 16, 10, &Overheads::default(), 1, 0.0).unwrap();
        assert!(
            real.mflups < ideal.mflups,
            "real {} !< ideal {}",
            real.mflups,
            ideal.mflups
        );
        // The gap is the consistent overprediction the models will show:
        // between ~1.2x and ~2.5x in the memory-bound regime.
        let ratio = ideal.mflups / real.mflups;
        assert!((1.2..2.5).contains(&ratio), "overprediction ratio {ratio}");
    }

    #[test]
    fn noise_varies_across_time_but_not_across_reruns() {
        let g = cylinder();
        let p = Platform::csp2_small();
        let cfg = KernelConfig::harvey();
        let oh = Overheads::default();
        let a = simulate_geometry(&p, &g, &cfg, 16, 10, &oh, 7, 0.0).unwrap();
        let b = simulate_geometry(&p, &g, &cfg, 16, 10, &oh, 7, 0.0).unwrap();
        assert_eq!(a, b, "same seed and time must reproduce");
        let c = simulate_geometry(&p, &g, &cfg, 16, 10, &oh, 7, 6.0).unwrap();
        assert_ne!(a.mflups, c.mflups, "different time should move noise");
    }

    #[test]
    fn oversubscription_returns_none() {
        let g = cylinder();
        // CSP-1 has 48 cores total.
        assert!(simulate_geometry(
            &Platform::csp1(),
            &g,
            &KernelConfig::harvey(),
            4096,
            10,
            &Overheads::default(),
            1,
            0.0
        )
        .is_none());
    }

    #[test]
    fn ec_beats_non_ec_at_scale() {
        // The interconnect study: with 4 nodes' worth of ranks, the EC
        // instance should outperform the plain one on the
        // communication-heavy cylinder.
        let g = cylinder();
        let cfg = KernelConfig::harvey();
        let oh = Overheads::default();
        let ec =
            simulate_geometry(&Platform::csp2_ec(), &g, &cfg, 144, 10, &oh, 3, 0.0).unwrap();
        let no_ec =
            simulate_geometry(&Platform::csp2(), &g, &cfg, 144, 10, &oh, 3, 0.0).unwrap();
        assert!(
            ec.mflups > no_ec.mflups,
            "EC {} !> no-EC {}",
            ec.mflups,
            no_ec.mflups
        );
    }

    #[test]
    fn layout_efficiency_matches_paper_observations() {
        use hemocloud_lbm::kernel::{Layout, Propagation};
        // AoS beats SoA for AB on CPUs...
        let ab_aos = kernel_cpu_efficiency(&KernelConfig::proxy(Layout::Aos, Propagation::Ab, true));
        let ab_soa = kernel_cpu_efficiency(&KernelConfig::proxy(Layout::Soa, Propagation::Ab, true));
        assert!(ab_aos > ab_soa);
        // ...but not for AA.
        let aa_aos = kernel_cpu_efficiency(&KernelConfig::proxy(Layout::Aos, Propagation::Aa, true));
        let aa_soa = kernel_cpu_efficiency(&KernelConfig::proxy(Layout::Soa, Propagation::Aa, true));
        assert!(aa_soa >= aa_aos);
        // Rolled loops always cost.
        let rolled = kernel_cpu_efficiency(&KernelConfig::proxy(Layout::Soa, Propagation::Ab, false));
        assert!(rolled < ab_soa);
    }

    #[test]
    fn simulated_ab_layouts_differ_but_aa_nearly_tie() {
        let g = cylinder();
        use hemocloud_lbm::kernel::{Layout, Propagation};
        let run = |layout, prop| {
            simulate_geometry(
                &Platform::csp2(),
                &g,
                &KernelConfig::proxy(layout, prop, true),
                16,
                10,
                &Overheads::default(),
                1,
                0.0,
            )
            .unwrap()
            .mflups
        };
        assert!(run(Layout::Aos, Propagation::Ab) > run(Layout::Soa, Propagation::Ab));
        assert!(run(Layout::Soa, Propagation::Aa) >= run(Layout::Aos, Propagation::Aa));
    }

    #[test]
    fn cotenants_slow_shared_nodes_down() {
        let g = cylinder();
        let p = Platform::csp2();
        let cfg = KernelConfig::harvey();
        let exclusive = simulate_geometry(&p, &g, &cfg, 8, 10, &Overheads::default(), 1, 0.0)
            .unwrap();
        let shared = simulate_geometry(
            &p,
            &g,
            &cfg,
            8,
            10,
            &Overheads {
                cotenant_cores_per_node: 28, // rest of the 36-core node busy
                ..Default::default()
            },
            1,
            0.0,
        )
        .unwrap();
        assert!(
            shared.mflups < exclusive.mflups,
            "shared {} !< exclusive {}",
            shared.mflups,
            exclusive.mflups
        );
        // A full node of our own ranks sees no co-tenant effect (the node
        // has no spare cores to share).
        let full = simulate_geometry(&p, &g, &cfg, 36, 10, &Overheads::default(), 1, 0.0)
            .unwrap();
        let full_shared = simulate_geometry(
            &p,
            &g,
            &cfg,
            36,
            10,
            &Overheads {
                cotenant_cores_per_node: 28,
                ..Default::default()
            },
            1,
            0.0,
        )
        .unwrap();
        assert_eq!(full.mflups, full_shared.mflups);
    }

    #[test]
    fn avg_solid_links_zero_for_all_bulk() {
        let g = VoxelGrid::filled(4, 4, 4, 1.0, CellType::Bulk);
        assert_eq!(measured_avg_solid_links(&g), 0.0);
    }

    #[test]
    fn prepared_run_matches_one_shot_simulation() {
        let g = cylinder();
        let p = Platform::csp2();
        let cfg = KernelConfig::harvey();
        let oh = Overheads::default();
        let prepared = PreparedRun::new(&p, &g, &cfg, 16, &oh).unwrap();
        let sliced = prepared.run_slice(10, 1, 0.0);
        let one_shot = simulate_geometry(&p, &g, &cfg, 16, 10, &oh, 1, 0.0).unwrap();
        assert_eq!(sliced, one_shot, "slice path must equal the one-shot path");
        assert_eq!(prepared.ranks(), 16);
        assert_eq!(prepared.nodes(), one_shot.nodes_used);
        assert_eq!(prepared.fluid_points(), g.fluid_count());
    }

    #[test]
    fn prepared_run_slices_compose_to_the_whole() {
        // Two back-to-back slices at the same hour/seed cover the same
        // steps as one long slice: per-step time is identical, so total
        // wall time adds exactly.
        let g = cylinder();
        let prepared = PreparedRun::new(
            &Platform::csp1(),
            &g,
            &KernelConfig::harvey(),
            8,
            &Overheads::default(),
        )
        .unwrap();
        let whole = prepared.run_slice(100, 5, 2.0);
        let a = prepared.run_slice(60, 5, 2.0);
        let b = prepared.run_slice(40, 5, 2.0);
        assert!((a.total_time_s + b.total_time_s - whole.total_time_s).abs() < 1e-12);
        // Advancing the clock moves the correlated noise: a later slice
        // times differently.
        let later = prepared.run_slice(40, 5, 8.0);
        assert_ne!(later.step_time_s, b.step_time_s);
    }

    #[test]
    fn prepared_run_rejects_infeasible_ranks() {
        let g = cylinder();
        let oh = Overheads::default();
        let cfg = KernelConfig::harvey();
        assert!(PreparedRun::new(&Platform::csp1(), &g, &cfg, 0, &oh).is_none());
        assert!(PreparedRun::new(&Platform::csp1(), &g, &cfg, 4096, &oh).is_none());
    }
}

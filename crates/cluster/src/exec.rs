//! The workload timing engine: "running" a decomposed LBM simulation on a
//! simulated platform.
//!
//! This is the measurement side of every model-vs-actual experiment
//! (paper Figs. 3, 4, 7, 8 and Table IV). Per timestep, each task pays
//!
//! * a **memory** term: its Eq. 9 byte count — inflated by a traffic
//!   factor for effects byte-counting misses (write-allocate, partial
//!   lines) — divided by its even share of the node's two-line bandwidth
//!   at an LBM-vs-STREAM efficiency < 1;
//! * a **communication** term: its halo messages over the intranodal or
//!   internodal link, each carrying a software overhead beyond wire
//!   latency, serialized per task;
//! * a per-step **synchronization overhead**; and the step time is the
//!   maximum over tasks, scaled by temporally correlated noise.
//!
//! The traffic factor, efficiency, software overhead and sync cost are the
//! *deliberately unmodeled* terms ([`Overheads`]): the performance model
//! divides plain byte counts by STREAM bandwidth and PingPong-fit link
//! parameters, so it consistently overpredicts these simulated
//! measurements — reproducing the paper's central observation.

use crate::memory;
use crate::network::{message_time_s, LinkKind};
use crate::noise::NoiseProcess;
use crate::platform::Platform;
use crate::topology::{build_topology, routed_task_comm, CommModel, PlatformTopology};
use hemocloud_decomp::halo::{bytes_per_task, DecompAnalysis};
use hemocloud_fabric::Flow;
use hemocloud_decomp::placement::Placement;
use hemocloud_decomp::rcb::RcbPartition;
use hemocloud_geometry::voxel::VoxelGrid;
use hemocloud_lbm::access_profile::AccessProfile;
use hemocloud_lbm::kernel::KernelConfig;

/// Real-machine effects the performance model does not know about.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Overheads {
    /// Fraction of STREAM-copy bandwidth LBM kernels sustain (< 1: gather
    /// access patterns, TLB pressure).
    pub lbm_bandwidth_efficiency: f64,
    /// Actual memory traffic relative to counted bytes (> 1:
    /// write-allocate fills, partial cache lines on wall points).
    pub memory_traffic_factor: f64,
    /// Per-message MPI software cost beyond wire latency, µs.
    pub message_software_overhead_us: f64,
    /// Per-step synchronization/imbalance cost, µs.
    pub step_sync_overhead_us: f64,
    /// Cores per node assumed busy with *other tenants'* work — the
    /// shared-node scenario of the paper's Discussion ("memory bandwidth
    /// usage by other users on the node ... may be an assumption of full
    /// or partial usage of the other cores"). 0 = node-exclusive
    /// allocation, the paper's default.
    pub cotenant_cores_per_node: usize,
}

impl Default for Overheads {
    fn default() -> Self {
        Self {
            lbm_bandwidth_efficiency: 0.80,
            memory_traffic_factor: 1.30,
            message_software_overhead_us: 1.5,
            step_sync_overhead_us: 8.0,
            cotenant_cores_per_node: 0,
        }
    }
}

impl Overheads {
    /// An idealized machine with none of the unmodeled effects — useful in
    /// tests to verify the engine converges to the model's own arithmetic.
    pub fn none() -> Self {
        Self {
            lbm_bandwidth_efficiency: 1.0,
            memory_traffic_factor: 1.0,
            message_software_overhead_us: 0.0,
            step_sync_overhead_us: 0.0,
            cotenant_cores_per_node: 0,
        }
    }
}

/// Layout/loop-structure efficiency of a kernel variant on CPUs, relative
/// to the best variant. Another *unmodeled* effect: byte counting cannot
/// see it, but measurements can — the paper observes AoS beating SoA for
/// the AB pattern ("expected ... for CPUs") yet not for AA, and the AA
/// advantage appearing "only for the unrolled kernels". Constants are
/// empirical, in line with the CPU layout studies the paper cites.
pub fn kernel_cpu_efficiency(config: &KernelConfig) -> f64 {
    use hemocloud_lbm::kernel::{Layout, Propagation};
    let layout = match (config.propagation, config.layout) {
        // AB streams strided gathers: AoS keeps each cell's 19 values on
        // adjacent lines, SoA scatters them across 19 pages — a large
        // enough gap that AoS wins even without unrolling (paper Fig. 4b).
        (Propagation::Ab, Layout::Aos) => 1.0,
        (Propagation::Ab, Layout::Soa) => 0.80,
        // AA's even step is purely cell-local, which suits SoA's
        // vectorization; the layouts roughly tie (paper Fig. 4a).
        (Propagation::Aa, Layout::Soa) => 1.0,
        (Propagation::Aa, Layout::Aos) => 0.96,
    };
    let loop_structure = if config.unrolled { 1.0 } else { 0.90 };
    layout * loop_structure
}

/// A fully described workload ready for timing.
#[derive(Debug, Clone)]
pub struct WorkloadTiming<'a> {
    /// Communication census of the decomposition.
    pub analysis: &'a DecompAnalysis,
    /// Task-to-node placement.
    pub placement: &'a Placement,
    /// Counted (model-level) bytes per task per step (Eq. 9).
    pub task_bytes: &'a [f64],
    /// Bytes exchanged per boundary point per message (profile's
    /// `n_point_comm_bytes`).
    pub comm_bytes_per_point: f64,
    /// Timesteps to run.
    pub steps: u64,
}

/// The outcome of a simulated run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulatedRun {
    /// Seconds per timestep (after noise).
    pub step_time_s: f64,
    /// Total wall-clock seconds.
    pub total_time_s: f64,
    /// Throughput in millions of fluid-point updates per second (Eq. 7).
    pub mflups: f64,
    /// Memory time of the critical (slowest) task, seconds/step.
    pub critical_mem_s: f64,
    /// Intranodal communication time of the critical task, seconds/step.
    pub critical_intra_s: f64,
    /// Internodal communication time of the critical task, seconds/step.
    pub critical_inter_s: f64,
    /// Nodes occupied.
    pub nodes_used: usize,
    /// The noise factor applied.
    pub noise_factor: f64,
}

/// Time a workload on a platform.
///
/// `time_h` is the wall-clock hour of the run (temporally correlated noise
/// — the Table IV study samples every 6 hours); `seed` fixes the noise
/// stream.
///
/// # Panics
/// Panics if the placement spans more nodes than the platform has, or if
/// array lengths disagree.
pub fn simulate(
    platform: &Platform,
    workload: &WorkloadTiming<'_>,
    overheads: &Overheads,
    seed: u64,
    time_h: f64,
) -> SimulatedRun {
    simulate_with_comm(platform, workload, overheads, seed, time_h, None)
}

/// [`simulate`] with an optional routed-fabric override for the
/// internodal term: when `inter_override` is `Some`, task `t`'s
/// internodal communication time is `inter_override[t]` (computed by
/// `topology::routed_task_comm`) instead of the scalar Eq. 12/13
/// serialized sum. Memory, intranodal and sync terms are identical in
/// both modes.
fn simulate_with_comm(
    platform: &Platform,
    workload: &WorkloadTiming<'_>,
    overheads: &Overheads,
    seed: u64,
    time_h: f64,
    inter_override: Option<&[f64]>,
) -> SimulatedRun {
    let n_tasks = workload.analysis.n_tasks;
    assert_eq!(workload.task_bytes.len(), n_tasks, "task_bytes length");
    assert_eq!(workload.placement.n_tasks(), n_tasks, "placement size");
    let nodes_used = workload.placement.n_nodes();
    assert!(
        nodes_used <= platform.max_nodes(),
        "{} nodes requested, platform {} has {}",
        nodes_used,
        platform.abbrev,
        platform.max_nodes()
    );

    let tasks_per_node = workload.placement.tasks_per_node();

    let mut worst_total = 0.0f64;
    let mut critical = (0.0, 0.0, 0.0);
    for task in 0..n_tasks {
        let node = workload.placement.node_of(task);
        // Co-tenants saturate memory channels alongside our ranks: the
        // node curve is evaluated at the total active core count and our
        // task gets one even share of it.
        let on_node = (tasks_per_node[node] + overheads.cotenant_cores_per_node)
            .min(platform.cores_per_node)
            .max(1);
        let t_mem = memory::memory_time_s(
            platform,
            on_node,
            workload.task_bytes[task] * overheads.memory_traffic_factor,
            overheads.lbm_bandwidth_efficiency,
        );

        let mut t_intra = 0.0;
        let mut t_inter = 0.0;
        for (&peer, &points) in &workload.analysis.messages[task] {
            let bytes = points as f64 * workload.comm_bytes_per_point;
            let kind = if workload.placement.is_internodal(task, peer) {
                LinkKind::Internodal
            } else {
                LinkKind::Intranodal
            };
            if kind == LinkKind::Internodal && inter_override.is_some() {
                continue; // priced by the fabric below
            }
            // Send and matching receive, serialized per task (the paper's
            // factor of two in Eq. 13).
            let t = 2.0 * message_time_s(
                platform,
                kind,
                bytes,
                overheads.message_software_overhead_us,
            );
            match kind {
                LinkKind::Intranodal => t_intra += t,
                LinkKind::Internodal => t_inter += t,
            }
        }
        if let Some(inter) = inter_override {
            t_inter = inter[task];
        }

        let total = t_mem + t_intra + t_inter;
        if total > worst_total {
            worst_total = total;
            critical = (t_mem, t_intra, t_inter);
        }
    }

    let mut noise = NoiseProcess::new(platform.noise_cv, seed);
    let noise_factor = noise.factor_at(time_h);
    let step_time_s =
        (worst_total + overheads.step_sync_overhead_us * 1e-6) * noise_factor;
    let total_time_s = step_time_s * workload.steps as f64;
    let updates = workload.analysis.total_points as f64 * workload.steps as f64;

    SimulatedRun {
        step_time_s,
        total_time_s,
        mflups: if total_time_s > 0.0 {
            updates / total_time_s / 1e6
        } else {
            0.0
        },
        critical_mem_s: critical.0,
        critical_intra_s: critical.1,
        critical_inter_s: critical.2,
        nodes_used,
        noise_factor,
    }
}

/// A decomposed workload pinned to one platform, ready to run in
/// resumable time slices.
///
/// The expensive, step-count-independent preparation (RCB partition, halo
/// census, placement, per-task byte counts, kernel-variant overheads) is
/// done once in [`PreparedRun::new`]; [`PreparedRun::run_slice`] then
/// times any window of timesteps at any wall-clock hour. A campaign
/// scheduler uses this to advance a job slice by slice — checking guards
/// and injecting faults between slices — without re-decomposing the
/// geometry, and with the temporally correlated noise still following the
/// simulated clock.
#[derive(Debug, Clone)]
pub struct PreparedRun {
    platform: Platform,
    analysis: DecompAnalysis,
    placement: Placement,
    task_bytes: Vec<f64>,
    comm_bytes_per_point: f64,
    /// Effective overheads with the kernel variant's CPU efficiency
    /// already folded in.
    overheads: Overheads,
    comm: CommModel,
    /// Own-topology instance for standalone routed runs (identity node
    /// map, sized to this run's node count).
    topology: Option<PlatformTopology>,
    /// Cached isolated per-task internodal comm seconds (routed mode).
    routed_inter_s: Option<Vec<f64>>,
}

impl PreparedRun {
    /// Decompose `grid` into `ranks` fluid-balanced RCB subdomains at one
    /// rank per core (HARVEY's load-balancing style) and derive byte
    /// counts from the kernel's access profile. Communication is priced
    /// with the scalar Eq. 12 model; see [`PreparedRun::new_with_comm`]
    /// for the fabric-backed path.
    ///
    /// Returns `None` when the rank count is zero, exceeds the platform's
    /// cores, or exceeds the geometry's fluid-point count.
    pub fn new(
        platform: &Platform,
        grid: &VoxelGrid,
        config: &KernelConfig,
        ranks: usize,
        overheads: &Overheads,
    ) -> Option<Self> {
        Self::new_with_comm(platform, grid, config, ranks, overheads, CommModel::Scalar)
    }

    /// [`PreparedRun::new`] with an explicit communication model. With
    /// [`CommModel::Routed`], the run owns a topology of `variant` sized
    /// to its own node count (identity node map) and caches its isolated
    /// per-task internodal comm; a campaign that wants cross-job
    /// contention instead calls [`PreparedRun::run_slice_contended`]
    /// against a shared pool topology.
    pub fn new_with_comm(
        platform: &Platform,
        grid: &VoxelGrid,
        config: &KernelConfig,
        ranks: usize,
        overheads: &Overheads,
        comm: CommModel,
    ) -> Option<Self> {
        if ranks == 0 || ranks > platform.total_cores || ranks > grid.fluid_count() {
            return None;
        }
        let partition = RcbPartition::new(grid, ranks);
        let analysis = DecompAnalysis::analyze(grid, &partition);
        let placement = Placement::contiguous(ranks, platform.cores_per_node);
        let avg_links = measured_avg_solid_links(grid);
        let profile = AccessProfile::for_kernel(config, avg_links);
        let task_bytes =
            bytes_per_task(grid, &partition, profile.bulk_bytes, profile.wall_bytes);
        let overheads = Overheads {
            lbm_bandwidth_efficiency: overheads.lbm_bandwidth_efficiency
                * kernel_cpu_efficiency(config),
            ..*overheads
        };
        let (topology, routed_inter_s) = match comm {
            CommModel::Scalar => (None, None),
            CommModel::Routed(variant) => {
                let topology = build_topology(platform, variant, placement.n_nodes());
                let node_map: Vec<usize> = (0..placement.n_nodes()).collect();
                let routed = routed_task_comm(
                    &topology,
                    &analysis,
                    &placement,
                    &node_map,
                    profile.boundary_point_bytes,
                    overheads.message_software_overhead_us,
                    &[],
                );
                (Some(topology), Some(routed.per_task_inter_s))
            }
        };
        Some(Self {
            platform: platform.clone(),
            analysis,
            placement,
            task_bytes,
            comm_bytes_per_point: profile.boundary_point_bytes,
            overheads,
            comm,
            topology,
            routed_inter_s,
        })
    }

    /// Whole nodes the run occupies.
    pub fn nodes(&self) -> usize {
        self.placement.n_nodes()
    }

    /// Ranks (tasks) the run uses.
    pub fn ranks(&self) -> usize {
        self.analysis.n_tasks
    }

    /// Fluid points updated per timestep.
    pub fn fluid_points(&self) -> usize {
        self.analysis.total_points
    }

    /// The communication model this run prices messages with.
    pub fn comm_model(&self) -> CommModel {
        self.comm
    }

    /// The run's own topology instance (routed mode only): the fabric its
    /// isolated comm cache was computed against.
    pub fn topology(&self) -> Option<&PlatformTopology> {
        self.topology.as_ref()
    }

    /// The Eq. 9 internodal message graph as fabric flows with local
    /// nodes mapped onto physical nodes via `node_map` — what a campaign
    /// injects as *background* traffic when other jobs share the pool
    /// fabric.
    pub fn flows(&self, node_map: &[usize], tag_base: u64) -> Vec<Flow> {
        crate::topology::job_flows(
            &self.analysis,
            &self.placement,
            node_map,
            self.comm_bytes_per_point,
            tag_base,
        )
    }

    /// Time a window of `steps` timesteps starting at wall-clock hour
    /// `time_h`. Slices of the same prepared run are independent noise
    /// draws (`seed` picks the stream; `time_h` moves the temporally
    /// correlated component), so resuming a run hour by hour reproduces
    /// the same variability a monolithic run would have seen.
    pub fn run_slice(&self, steps: u64, seed: u64, time_h: f64) -> SimulatedRun {
        let workload = WorkloadTiming {
            analysis: &self.analysis,
            placement: &self.placement,
            task_bytes: &self.task_bytes,
            comm_bytes_per_point: self.comm_bytes_per_point,
            steps,
        };
        simulate_with_comm(
            &self.platform,
            &workload,
            &self.overheads,
            seed,
            time_h,
            self.routed_inter_s.as_deref(),
        )
    }

    /// [`PreparedRun::run_slice`] against a *shared* pool topology with
    /// other jobs' traffic in flight: this run's ranks live on physical
    /// nodes `node_map` of `topology`, and `background` carries the
    /// concurrent jobs' flows (their [`PreparedRun::flows`] mapped
    /// through their own node sets). The internodal term is recomputed
    /// under fair-share contention; memory, intranodal and sync terms
    /// are untouched. Requires a routed run (panics on a scalar one —
    /// the scalar model has no links to contend on).
    pub fn run_slice_contended(
        &self,
        steps: u64,
        seed: u64,
        time_h: f64,
        topology: &PlatformTopology,
        node_map: &[usize],
        background: &[Flow],
    ) -> SimulatedRun {
        assert!(
            matches!(self.comm, CommModel::Routed(_)),
            "run_slice_contended requires CommModel::Routed"
        );
        let routed = routed_task_comm(
            topology,
            &self.analysis,
            &self.placement,
            node_map,
            self.comm_bytes_per_point,
            self.overheads.message_software_overhead_us,
            background,
        );
        let workload = WorkloadTiming {
            analysis: &self.analysis,
            placement: &self.placement,
            task_bytes: &self.task_bytes,
            comm_bytes_per_point: self.comm_bytes_per_point,
            steps,
        };
        simulate_with_comm(
            &self.platform,
            &workload,
            &self.overheads,
            seed,
            time_h,
            Some(&routed.per_task_inter_s),
        )
    }
}

/// Convenience wrapper: decompose `grid` into `ranks` fluid-balanced RCB
/// subdomains at one rank per core (HARVEY's load-balancing style), derive
/// byte counts from the kernel's access profile, and time `steps`
/// timesteps on `platform`.
///
/// Returns `None` when the rank count exceeds the platform's cores or the
/// geometry's fluid-point count.
#[allow(clippy::too_many_arguments)] // mirrors the experiment's free variables
pub fn simulate_geometry(
    platform: &Platform,
    grid: &VoxelGrid,
    config: &KernelConfig,
    ranks: usize,
    steps: u64,
    overheads: &Overheads,
    seed: u64,
    time_h: f64,
) -> Option<SimulatedRun> {
    PreparedRun::new(platform, grid, config, ranks, overheads)
        .map(|prepared| prepared.run_slice(steps, seed, time_h))
}

/// Average solid-link count over wall cells of a grid (see
/// `hemocloud_lbm::access_profile::average_solid_links` for the mesh-side
/// equivalent).
pub fn measured_avg_solid_links(grid: &VoxelGrid) -> f64 {
    use hemocloud_geometry::classify::solid_link_count;
    use hemocloud_geometry::voxel::CellType;
    let mut total = 0usize;
    let mut walls = 0usize;
    for (x, y, z, c) in grid.iter_cells() {
        if c == CellType::Wall {
            total += solid_link_count(grid, x, y, z);
            walls += 1;
        }
    }
    if walls == 0 {
        0.0
    } else {
        total as f64 / walls as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hemocloud_geometry::anatomy::CylinderSpec;
    use hemocloud_geometry::voxel::CellType;

    fn cylinder() -> VoxelGrid {
        CylinderSpec::default().with_resolution(10).build()
    }

    #[test]
    fn more_ranks_run_faster_on_large_workloads() {
        // Strong scaling pays off only while per-task memory time dominates
        // message latency, so use a workload large enough for 64 ranks.
        let g = CylinderSpec::default().with_resolution(36).build();
        let p = Platform::csp2();
        let cfg = KernelConfig::harvey();
        let oh = Overheads::default();
        let r8 = simulate_geometry(&p, &g, &cfg, 8, 100, &oh, 1, 0.0).unwrap();
        let r64 = simulate_geometry(&p, &g, &cfg, 64, 100, &oh, 1, 0.0).unwrap();
        assert!(
            r64.mflups > r8.mflups,
            "64 ranks {} !> 8 ranks {}",
            r64.mflups,
            r8.mflups
        );
    }

    #[test]
    fn tiny_workloads_roll_over_at_high_rank_counts() {
        // The flip side: on a small domain, internodal latency beats the
        // shrinking memory share and scaling inverts — the accelerated
        // drop the paper sees at high MPI ranks (its Figs. 7-8).
        let g = cylinder();
        let p = Platform::csp2();
        let cfg = KernelConfig::harvey();
        let oh = Overheads::default();
        let r8 = simulate_geometry(&p, &g, &cfg, 8, 100, &oh, 1, 0.0).unwrap();
        let r64 = simulate_geometry(&p, &g, &cfg, 64, 100, &oh, 1, 0.0).unwrap();
        assert!(
            r8.mflups > r64.mflups,
            "expected rollover: 8 ranks {} vs 64 ranks {}",
            r8.mflups,
            r64.mflups
        );
    }

    #[test]
    fn single_rank_has_no_communication() {
        let g = cylinder();
        let r = simulate_geometry(
            &Platform::trc(),
            &g,
            &KernelConfig::harvey(),
            1,
            10,
            &Overheads::default(),
            1,
            0.0,
        )
        .unwrap();
        assert_eq!(r.critical_intra_s, 0.0);
        assert_eq!(r.critical_inter_s, 0.0);
        assert!(r.critical_mem_s > 0.0);
        assert_eq!(r.nodes_used, 1);
    }

    #[test]
    fn internodal_comm_appears_past_one_node() {
        let g = cylinder();
        let p = Platform::csp1(); // 16 cores/node
        let r = simulate_geometry(
            &p,
            &g,
            &KernelConfig::harvey(),
            32,
            10,
            &Overheads::default(),
            1,
            0.0,
        )
        .unwrap();
        assert_eq!(r.nodes_used, 2);
        assert!(r.critical_inter_s > 0.0);
    }

    #[test]
    fn overheads_slow_the_machine_down() {
        let g = cylinder();
        let p = Platform::csp2();
        let cfg = KernelConfig::harvey();
        let ideal = simulate_geometry(&p, &g, &cfg, 16, 10, &Overheads::none(), 1, 0.0).unwrap();
        let real =
            simulate_geometry(&p, &g, &cfg, 16, 10, &Overheads::default(), 1, 0.0).unwrap();
        assert!(
            real.mflups < ideal.mflups,
            "real {} !< ideal {}",
            real.mflups,
            ideal.mflups
        );
        // The gap is the consistent overprediction the models will show:
        // between ~1.2x and ~2.5x in the memory-bound regime.
        let ratio = ideal.mflups / real.mflups;
        assert!((1.2..2.5).contains(&ratio), "overprediction ratio {ratio}");
    }

    #[test]
    fn noise_varies_across_time_but_not_across_reruns() {
        let g = cylinder();
        let p = Platform::csp2_small();
        let cfg = KernelConfig::harvey();
        let oh = Overheads::default();
        let a = simulate_geometry(&p, &g, &cfg, 16, 10, &oh, 7, 0.0).unwrap();
        let b = simulate_geometry(&p, &g, &cfg, 16, 10, &oh, 7, 0.0).unwrap();
        assert_eq!(a, b, "same seed and time must reproduce");
        let c = simulate_geometry(&p, &g, &cfg, 16, 10, &oh, 7, 6.0).unwrap();
        assert_ne!(a.mflups, c.mflups, "different time should move noise");
    }

    #[test]
    fn oversubscription_returns_none() {
        let g = cylinder();
        // CSP-1 has 48 cores total.
        assert!(simulate_geometry(
            &Platform::csp1(),
            &g,
            &KernelConfig::harvey(),
            4096,
            10,
            &Overheads::default(),
            1,
            0.0
        )
        .is_none());
    }

    #[test]
    fn ec_beats_non_ec_at_scale() {
        // The interconnect study: with 4 nodes' worth of ranks, the EC
        // instance should outperform the plain one on the
        // communication-heavy cylinder.
        let g = cylinder();
        let cfg = KernelConfig::harvey();
        let oh = Overheads::default();
        let ec =
            simulate_geometry(&Platform::csp2_ec(), &g, &cfg, 144, 10, &oh, 3, 0.0).unwrap();
        let no_ec =
            simulate_geometry(&Platform::csp2(), &g, &cfg, 144, 10, &oh, 3, 0.0).unwrap();
        assert!(
            ec.mflups > no_ec.mflups,
            "EC {} !> no-EC {}",
            ec.mflups,
            no_ec.mflups
        );
    }

    #[test]
    fn layout_efficiency_matches_paper_observations() {
        use hemocloud_lbm::kernel::{Layout, Propagation};
        // AoS beats SoA for AB on CPUs...
        let ab_aos = kernel_cpu_efficiency(&KernelConfig::proxy(Layout::Aos, Propagation::Ab, true));
        let ab_soa = kernel_cpu_efficiency(&KernelConfig::proxy(Layout::Soa, Propagation::Ab, true));
        assert!(ab_aos > ab_soa);
        // ...but not for AA.
        let aa_aos = kernel_cpu_efficiency(&KernelConfig::proxy(Layout::Aos, Propagation::Aa, true));
        let aa_soa = kernel_cpu_efficiency(&KernelConfig::proxy(Layout::Soa, Propagation::Aa, true));
        assert!(aa_soa >= aa_aos);
        // Rolled loops always cost.
        let rolled = kernel_cpu_efficiency(&KernelConfig::proxy(Layout::Soa, Propagation::Ab, false));
        assert!(rolled < ab_soa);
    }

    #[test]
    fn simulated_ab_layouts_differ_but_aa_nearly_tie() {
        let g = cylinder();
        use hemocloud_lbm::kernel::{Layout, Propagation};
        let run = |layout, prop| {
            simulate_geometry(
                &Platform::csp2(),
                &g,
                &KernelConfig::proxy(layout, prop, true),
                16,
                10,
                &Overheads::default(),
                1,
                0.0,
            )
            .unwrap()
            .mflups
        };
        assert!(run(Layout::Aos, Propagation::Ab) > run(Layout::Soa, Propagation::Ab));
        assert!(run(Layout::Soa, Propagation::Aa) >= run(Layout::Aos, Propagation::Aa));
    }

    #[test]
    fn cotenants_slow_shared_nodes_down() {
        let g = cylinder();
        let p = Platform::csp2();
        let cfg = KernelConfig::harvey();
        let exclusive = simulate_geometry(&p, &g, &cfg, 8, 10, &Overheads::default(), 1, 0.0)
            .unwrap();
        let shared = simulate_geometry(
            &p,
            &g,
            &cfg,
            8,
            10,
            &Overheads {
                cotenant_cores_per_node: 28, // rest of the 36-core node busy
                ..Default::default()
            },
            1,
            0.0,
        )
        .unwrap();
        assert!(
            shared.mflups < exclusive.mflups,
            "shared {} !< exclusive {}",
            shared.mflups,
            exclusive.mflups
        );
        // A full node of our own ranks sees no co-tenant effect (the node
        // has no spare cores to share).
        let full = simulate_geometry(&p, &g, &cfg, 36, 10, &Overheads::default(), 1, 0.0)
            .unwrap();
        let full_shared = simulate_geometry(
            &p,
            &g,
            &cfg,
            36,
            10,
            &Overheads {
                cotenant_cores_per_node: 28,
                ..Default::default()
            },
            1,
            0.0,
        )
        .unwrap();
        assert_eq!(full.mflups, full_shared.mflups);
    }

    #[test]
    fn avg_solid_links_zero_for_all_bulk() {
        let g = VoxelGrid::filled(4, 4, 4, 1.0, CellType::Bulk);
        assert_eq!(measured_avg_solid_links(&g), 0.0);
    }

    #[test]
    fn prepared_run_matches_one_shot_simulation() {
        let g = cylinder();
        let p = Platform::csp2();
        let cfg = KernelConfig::harvey();
        let oh = Overheads::default();
        let prepared = PreparedRun::new(&p, &g, &cfg, 16, &oh).unwrap();
        let sliced = prepared.run_slice(10, 1, 0.0);
        let one_shot = simulate_geometry(&p, &g, &cfg, 16, 10, &oh, 1, 0.0).unwrap();
        assert_eq!(sliced, one_shot, "slice path must equal the one-shot path");
        assert_eq!(prepared.ranks(), 16);
        assert_eq!(prepared.nodes(), one_shot.nodes_used);
        assert_eq!(prepared.fluid_points(), g.fluid_count());
    }

    #[test]
    fn prepared_run_slices_compose_to_the_whole() {
        // Two back-to-back slices at the same hour/seed cover the same
        // steps as one long slice: per-step time is identical, so total
        // wall time adds exactly.
        let g = cylinder();
        let prepared = PreparedRun::new(
            &Platform::csp1(),
            &g,
            &KernelConfig::harvey(),
            8,
            &Overheads::default(),
        )
        .unwrap();
        let whole = prepared.run_slice(100, 5, 2.0);
        let a = prepared.run_slice(60, 5, 2.0);
        let b = prepared.run_slice(40, 5, 2.0);
        hemocloud_rt::float::assert_close(
            a.total_time_s + b.total_time_s,
            whole.total_time_s,
            0.0,
            4,
        );
        // Advancing the clock moves the correlated noise: a later slice
        // times differently.
        let later = prepared.run_slice(40, 5, 8.0);
        assert_ne!(later.step_time_s, b.step_time_s);
    }

    #[test]
    fn prepared_run_rejects_infeasible_ranks() {
        let g = cylinder();
        let oh = Overheads::default();
        let cfg = KernelConfig::harvey();
        assert!(PreparedRun::new(&Platform::csp1(), &g, &cfg, 0, &oh).is_none());
        assert!(PreparedRun::new(&Platform::csp1(), &g, &cfg, 4096, &oh).is_none());
    }

    #[test]
    fn scalar_comm_model_is_the_plain_constructor() {
        let g = cylinder();
        let p = Platform::csp2();
        let cfg = KernelConfig::harvey();
        let oh = Overheads::default();
        let plain = PreparedRun::new(&p, &g, &cfg, 72, &oh).unwrap();
        let scalar =
            PreparedRun::new_with_comm(&p, &g, &cfg, 72, &oh, CommModel::Scalar).unwrap();
        assert_eq!(
            plain.run_slice(10, 1, 0.0),
            scalar.run_slice(10, 1, 0.0),
            "explicit Scalar must be the default path"
        );
        assert!(scalar.topology().is_none());
        assert_eq!(scalar.comm_model().name(), "scalar");
    }

    #[test]
    fn routed_comm_is_deterministic_and_repriced() {
        use crate::topology::TopologyVariant;
        let g = cylinder();
        let p = Platform::csp2();
        let cfg = KernelConfig::harvey();
        let oh = Overheads::default();
        let comm = CommModel::Routed(TopologyVariant::default_for(&p));
        let routed = PreparedRun::new_with_comm(&p, &g, &cfg, 72, &oh, comm).unwrap();
        assert!(routed.topology().is_some());
        let a = routed.run_slice(10, 1, 0.0);
        let b = routed.run_slice(10, 1, 0.0);
        assert_eq!(a, b, "routed slices must be bit-identical across reruns");
        // The fabric prices internodal comm hop-by-hop, so on a 2-node
        // run it lands at a different (still finite, positive) figure
        // than the scalar Eq. 12 model — the gap calibration absorbs.
        let scalar = PreparedRun::new(&p, &g, &cfg, 72, &oh).unwrap().run_slice(10, 1, 0.0);
        assert!(a.critical_inter_s > 0.0 && a.critical_inter_s.is_finite());
        assert_ne!(a.critical_inter_s, scalar.critical_inter_s);
        // Memory and intranodal terms are untouched by the comm model;
        // repricing inter may hand "critical" to a near-identical
        // fluid-balanced twin task, hence ULP closeness, not equality.
        hemocloud_rt::float::assert_close(a.critical_mem_s, scalar.critical_mem_s, 0.0, 64);
        hemocloud_rt::float::assert_close(
            a.critical_intra_s,
            scalar.critical_intra_s,
            0.0,
            64,
        );
    }

    #[test]
    fn background_flows_slow_a_contended_slice() {
        use crate::topology::TopologyVariant;
        let g = cylinder();
        let p = Platform::csp1(); // 16 cores/node -> 32 ranks = 2 nodes
        let cfg = KernelConfig::harvey();
        let oh = Overheads::default();
        let comm = CommModel::Routed(TopologyVariant::Spread);
        let job = PreparedRun::new_with_comm(&p, &g, &cfg, 32, &oh, comm).unwrap();
        let tenant = PreparedRun::new_with_comm(&p, &g, &cfg, 32, &oh, comm).unwrap();
        // A shared 4-node spread pool: the job on physical nodes {0, 1},
        // the tenant on {2, 3}. rack_of = id % 2, so both jobs straddle
        // the same two racks and share the trunk links.
        let pool_topo = build_topology(&p, TopologyVariant::Spread, 4);
        let background = tenant.flows(&[2, 3], 1 << 32);
        assert!(!background.is_empty());
        let isolated = job.run_slice_contended(10, 1, 0.0, &pool_topo, &[0, 1], &[]);
        let contended =
            job.run_slice_contended(10, 1, 0.0, &pool_topo, &[0, 1], &background);
        assert!(
            contended.critical_inter_s > isolated.critical_inter_s,
            "contended inter {} !> isolated {}",
            contended.critical_inter_s,
            isolated.critical_inter_s
        );
        assert!(contended.mflups < isolated.mflups);
        // Contention touches only the internodal term (the critical task
        // may shift to a fluid-balanced twin, hence ULP closeness).
        hemocloud_rt::float::assert_close(
            contended.critical_mem_s,
            isolated.critical_mem_s,
            0.0,
            64,
        );
        hemocloud_rt::float::assert_close(
            contended.critical_intra_s,
            isolated.critical_intra_s,
            0.0,
            64,
        );
        // And the contended slice is itself reproducible.
        let again =
            job.run_slice_contended(10, 1, 0.0, &pool_topo, &[0, 1], &background);
        assert_eq!(contended, again);
    }

    #[test]
    #[should_panic(expected = "requires CommModel::Routed")]
    fn contended_slice_rejects_scalar_runs() {
        let g = cylinder();
        let p = Platform::csp1();
        let run =
            PreparedRun::new(&p, &g, &KernelConfig::harvey(), 32, &Overheads::default())
                .unwrap();
        let topo = build_topology(&p, crate::topology::TopologyVariant::Spread, 4);
        run.run_slice_contended(10, 1, 0.0, &topo, &[0, 1], &[]);
    }
}

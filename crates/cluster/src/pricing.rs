//! Instance pricing and run-cost accounting.
//!
//! The paper's framework weighs throughput against cost ("one could weight
//! these ratios by the relative cost of each instance") but never states
//! rates; the per-platform `price_per_node_hour` values are **synthetic**
//! plausible on-demand rates (documented in [`crate::platform`]) and all
//! conclusions drawn from them are relative.

use crate::exec::SimulatedRun;
use crate::platform::Platform;

/// Billing granularity of the provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Billing {
    /// Pay for exact seconds used (modern cloud default).
    PerSecond,
    /// Round each node's usage up to whole hours (legacy cloud / typical
    /// cluster accounting).
    PerHour,
}

/// A pricing view over a set of platforms.
#[derive(Debug, Clone)]
pub struct PriceSheet {
    /// Billing granularity applied to every platform.
    pub billing: Billing,
}

impl Default for PriceSheet {
    fn default() -> Self {
        Self {
            billing: Billing::PerSecond,
        }
    }
}

impl PriceSheet {
    /// Dollar cost of occupying `nodes` nodes for `seconds` on `platform`.
    pub fn cost(&self, platform: &Platform, nodes: usize, seconds: f64) -> f64 {
        assert!(seconds >= 0.0);
        let hours = match self.billing {
            Billing::PerSecond => seconds / 3600.0,
            Billing::PerHour => (seconds / 3600.0).ceil().max(1.0),
        };
        platform.price_per_node_hour * nodes as f64 * hours
    }

    /// Cost of a simulated run.
    pub fn run_cost(&self, platform: &Platform, run: &SimulatedRun) -> f64 {
        self.cost(platform, run.nodes_used, run.total_time_s)
    }

    /// Cost of a job whose node occupancy was split into several separate
    /// *attempts* (a preempted-and-retried run releases its nodes and
    /// re-acquires them later).
    ///
    /// Billing is per attempt, because that is how providers meter: each
    /// attempt is its own allocation, so under [`Billing::PerHour`] every
    /// attempt's partial final hour rounds up **independently** — two
    /// 30-minute attempts bill two node-hours, not one. The job never gets
    /// to sum its attempts before rounding. Under [`Billing::PerSecond`]
    /// the split changes nothing. Zero-length attempts (a node lost at the
    /// instant of acquisition) are not billed.
    pub fn attempts_cost(
        &self,
        platform: &Platform,
        nodes: usize,
        attempt_seconds: &[f64],
    ) -> f64 {
        attempt_seconds
            .iter()
            .filter(|&&s| s > 0.0)
            .map(|&s| self.cost(platform, nodes, s))
            .sum()
    }

    /// Throughput per dollar: MFLUPS-seconds of work per dollar spent —
    /// the paper's "flops/dollar"-style decision metric.
    pub fn updates_per_dollar(&self, platform: &Platform, run: &SimulatedRun) -> f64 {
        let cost = self.run_cost(platform, run);
        if cost == 0.0 {
            return f64::INFINITY;
        }
        run.mflups * run.total_time_s * 1e6 / cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_run(nodes: usize, seconds: f64, mflups: f64) -> SimulatedRun {
        SimulatedRun {
            step_time_s: seconds,
            total_time_s: seconds,
            mflups,
            critical_mem_s: 0.0,
            critical_intra_s: 0.0,
            critical_inter_s: 0.0,
            nodes_used: nodes,
            noise_factor: 1.0,
        }
    }

    #[test]
    fn per_second_is_proportional() {
        let sheet = PriceSheet::default();
        let p = Platform::csp2();
        let c1 = sheet.cost(&p, 2, 1800.0);
        let c2 = sheet.cost(&p, 2, 3600.0);
        assert!((c2 - 2.0 * c1).abs() < 1e-9);
        assert!((c2 - 2.0 * p.price_per_node_hour).abs() < 1e-9);
    }

    #[test]
    fn per_hour_rounds_up() {
        let sheet = PriceSheet {
            billing: Billing::PerHour,
        };
        let p = Platform::csp1();
        // 30 minutes bills as a full hour.
        assert!((sheet.cost(&p, 1, 1800.0) - p.price_per_node_hour).abs() < 1e-9);
        // 61 minutes bills as two hours.
        assert!((sheet.cost(&p, 1, 3660.0) - 2.0 * p.price_per_node_hour).abs() < 1e-9);
    }

    #[test]
    fn updates_per_dollar_favors_cheap_equal_throughput() {
        let sheet = PriceSheet::default();
        let run = dummy_run(1, 3600.0, 100.0);
        let cheap = Platform::csp2_small();
        let pricey = Platform::csp2_ec();
        assert!(sheet.updates_per_dollar(&cheap, &run) > sheet.updates_per_dollar(&pricey, &run));
    }

    #[test]
    fn zero_time_run_is_free() {
        let sheet = PriceSheet::default();
        let run = dummy_run(4, 0.0, 0.0);
        assert_eq!(sheet.run_cost(&Platform::trc(), &run), 0.0);
    }

    #[test]
    fn per_hour_attempts_round_up_independently() {
        // The interrupted-job semantics: a job preempted at 30 minutes and
        // rerun for 30 more bills TWO node-hours under per-hour billing —
        // each attempt is a fresh allocation whose partial hour rounds up.
        let sheet = PriceSheet {
            billing: Billing::PerHour,
        };
        let p = Platform::csp1();
        let split = sheet.attempts_cost(&p, 1, &[1800.0, 1800.0]);
        let whole = sheet.cost(&p, 1, 3600.0);
        assert!((split - 2.0 * p.price_per_node_hour).abs() < 1e-9);
        assert!((whole - p.price_per_node_hour).abs() < 1e-9);
        assert!(split > whole, "per-attempt rounding must cost more");
    }

    #[test]
    fn per_hour_attempts_scale_with_nodes_and_count() {
        let sheet = PriceSheet {
            billing: Billing::PerHour,
        };
        let p = Platform::csp2();
        // Three attempts (90 min + 10 s + 59 min) on 2 nodes:
        // 2 + 1 + 1 hours × 2 nodes.
        let cost = sheet.attempts_cost(&p, 2, &[5400.0, 10.0, 3540.0]);
        assert!((cost - 4.0 * 2.0 * p.price_per_node_hour).abs() < 1e-9);
    }

    #[test]
    fn per_second_attempts_sum_exactly() {
        // Per-second billing is indifferent to how the job was split.
        let sheet = PriceSheet::default();
        let p = Platform::trc();
        let split = sheet.attempts_cost(&p, 3, &[100.0, 250.0, 3.5]);
        let whole = sheet.cost(&p, 3, 353.5);
        assert!((split - whole).abs() < 1e-9);
    }

    #[test]
    fn zero_length_attempts_are_not_billed() {
        let sheet = PriceSheet {
            billing: Billing::PerHour,
        };
        let p = Platform::csp1();
        // cost() bills a minimum hour even at 0 s (cluster-style minimum),
        // but a zero-length *attempt* never acquired usable time.
        assert_eq!(sheet.attempts_cost(&p, 1, &[0.0, 0.0]), 0.0);
        assert!((sheet.attempts_cost(&p, 1, &[0.0, 60.0]) - p.price_per_node_hour).abs() < 1e-9);
        assert_eq!(sheet.attempts_cost(&p, 1, &[]), 0.0);
    }
}

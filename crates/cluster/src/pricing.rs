//! Instance pricing and run-cost accounting.
//!
//! The paper's framework weighs throughput against cost ("one could weight
//! these ratios by the relative cost of each instance") but never states
//! rates; the per-platform `price_per_node_hour` values are **synthetic**
//! plausible on-demand rates (documented in [`crate::platform`]) and all
//! conclusions drawn from them are relative.

use crate::exec::SimulatedRun;
use crate::platform::Platform;

/// Billing granularity of the provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Billing {
    /// Pay for exact seconds used (modern cloud default).
    PerSecond,
    /// Round each node's usage up to whole hours (legacy cloud / typical
    /// cluster accounting).
    PerHour,
}

/// A pricing view over a set of platforms.
#[derive(Debug, Clone)]
pub struct PriceSheet {
    /// Billing granularity applied to every platform.
    pub billing: Billing,
}

impl Default for PriceSheet {
    fn default() -> Self {
        Self {
            billing: Billing::PerSecond,
        }
    }
}

impl PriceSheet {
    /// Dollar cost of occupying `nodes` nodes for `seconds` on `platform`.
    pub fn cost(&self, platform: &Platform, nodes: usize, seconds: f64) -> f64 {
        assert!(seconds >= 0.0);
        let hours = match self.billing {
            Billing::PerSecond => seconds / 3600.0,
            Billing::PerHour => (seconds / 3600.0).ceil().max(1.0),
        };
        platform.price_per_node_hour * nodes as f64 * hours
    }

    /// Cost of a simulated run.
    pub fn run_cost(&self, platform: &Platform, run: &SimulatedRun) -> f64 {
        self.cost(platform, run.nodes_used, run.total_time_s)
    }

    /// Cost of a job whose node occupancy was split into several separate
    /// *attempts* (a preempted-and-retried run releases its nodes and
    /// re-acquires them later).
    ///
    /// Billing is per attempt, because that is how providers meter: each
    /// attempt is its own allocation, so under [`Billing::PerHour`] every
    /// attempt's partial final hour rounds up **independently** — two
    /// 30-minute attempts bill two node-hours, not one. The job never gets
    /// to sum its attempts before rounding. Under [`Billing::PerSecond`]
    /// the split changes nothing. Zero-length attempts (a node lost at the
    /// instant of acquisition) are not billed.
    pub fn attempts_cost(
        &self,
        platform: &Platform,
        nodes: usize,
        attempt_seconds: &[f64],
    ) -> f64 {
        attempt_seconds
            .iter()
            .filter(|&&s| s > 0.0)
            .map(|&s| self.cost(platform, nodes, s))
            .sum()
    }

    /// Whole seconds billed for one attempt of `seconds` wall-seconds on
    /// **one** node — the integer second counter the sweep harness
    /// reconciles against busy time ("billed ≥ busy").
    ///
    /// Providers meter whole seconds, so a partial second rounds up; under
    /// [`Billing::PerHour`] the attempt rounds up to whole hours with a
    /// one-hour minimum (matching [`PriceSheet::cost`]). All arithmetic is
    /// checked/saturating: an attempt longer than `u64::MAX` seconds (a
    /// synthetic-campaign extreme, ~585 billion years) pins to `u64::MAX`
    /// instead of wrapping, so very long campaigns can never under-bill
    /// through integer overflow.
    ///
    /// # Panics
    /// Panics on NaN or negative `seconds`.
    pub fn billed_seconds(&self, seconds: f64) -> u64 {
        assert!(seconds >= 0.0, "bad attempt seconds {seconds}");
        let whole = if seconds >= u64::MAX as f64 {
            u64::MAX
        } else {
            seconds.ceil() as u64
        };
        match self.billing {
            Billing::PerSecond => whole,
            Billing::PerHour => whole
                .div_ceil(3600)
                .max(1)
                .checked_mul(3600)
                .unwrap_or(u64::MAX),
        }
    }

    /// Total billed node-seconds of a job split into several attempts on
    /// `nodes` nodes: each attempt rounds up independently (the same
    /// per-attempt metering as [`PriceSheet::attempts_cost`]), zero-length
    /// attempts are not billed, and the node multiply and running sum
    /// saturate at `u64::MAX` rather than wrapping.
    pub fn attempts_billed_node_seconds(&self, nodes: usize, attempt_seconds: &[f64]) -> u64 {
        attempt_seconds
            .iter()
            .filter(|&&s| s > 0.0)
            .fold(0u64, |acc, &s| {
                acc.saturating_add(self.billed_seconds(s).saturating_mul(nodes as u64))
            })
    }

    /// Throughput per dollar: MFLUPS-seconds of work per dollar spent —
    /// the paper's "flops/dollar"-style decision metric.
    pub fn updates_per_dollar(&self, platform: &Platform, run: &SimulatedRun) -> f64 {
        let cost = self.run_cost(platform, run);
        if cost == 0.0 {
            return f64::INFINITY;
        }
        run.mflups * run.total_time_s * 1e6 / cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_run(nodes: usize, seconds: f64, mflups: f64) -> SimulatedRun {
        SimulatedRun {
            step_time_s: seconds,
            total_time_s: seconds,
            mflups,
            critical_mem_s: 0.0,
            critical_intra_s: 0.0,
            critical_inter_s: 0.0,
            nodes_used: nodes,
            noise_factor: 1.0,
        }
    }

    #[test]
    fn per_second_is_proportional() {
        let sheet = PriceSheet::default();
        let p = Platform::csp2();
        let c1 = sheet.cost(&p, 2, 1800.0);
        let c2 = sheet.cost(&p, 2, 3600.0);
        assert!((c2 - 2.0 * c1).abs() < 1e-9);
        assert!((c2 - 2.0 * p.price_per_node_hour).abs() < 1e-9);
    }

    #[test]
    fn per_hour_rounds_up() {
        let sheet = PriceSheet {
            billing: Billing::PerHour,
        };
        let p = Platform::csp1();
        // 30 minutes bills as a full hour.
        assert!((sheet.cost(&p, 1, 1800.0) - p.price_per_node_hour).abs() < 1e-9);
        // 61 minutes bills as two hours.
        assert!((sheet.cost(&p, 1, 3660.0) - 2.0 * p.price_per_node_hour).abs() < 1e-9);
    }

    #[test]
    fn updates_per_dollar_favors_cheap_equal_throughput() {
        let sheet = PriceSheet::default();
        let run = dummy_run(1, 3600.0, 100.0);
        let cheap = Platform::csp2_small();
        let pricey = Platform::csp2_ec();
        assert!(sheet.updates_per_dollar(&cheap, &run) > sheet.updates_per_dollar(&pricey, &run));
    }

    #[test]
    fn zero_time_run_is_free() {
        let sheet = PriceSheet::default();
        let run = dummy_run(4, 0.0, 0.0);
        assert_eq!(sheet.run_cost(&Platform::trc(), &run), 0.0);
    }

    #[test]
    fn per_hour_attempts_round_up_independently() {
        // The interrupted-job semantics: a job preempted at 30 minutes and
        // rerun for 30 more bills TWO node-hours under per-hour billing —
        // each attempt is a fresh allocation whose partial hour rounds up.
        let sheet = PriceSheet {
            billing: Billing::PerHour,
        };
        let p = Platform::csp1();
        let split = sheet.attempts_cost(&p, 1, &[1800.0, 1800.0]);
        let whole = sheet.cost(&p, 1, 3600.0);
        assert!((split - 2.0 * p.price_per_node_hour).abs() < 1e-9);
        assert!((whole - p.price_per_node_hour).abs() < 1e-9);
        assert!(split > whole, "per-attempt rounding must cost more");
    }

    #[test]
    fn per_hour_attempts_scale_with_nodes_and_count() {
        let sheet = PriceSheet {
            billing: Billing::PerHour,
        };
        let p = Platform::csp2();
        // Three attempts (90 min + 10 s + 59 min) on 2 nodes:
        // 2 + 1 + 1 hours × 2 nodes.
        let cost = sheet.attempts_cost(&p, 2, &[5400.0, 10.0, 3540.0]);
        assert!((cost - 4.0 * 2.0 * p.price_per_node_hour).abs() < 1e-9);
    }

    #[test]
    fn per_second_attempts_sum_exactly() {
        // Per-second billing is indifferent to how the job was split.
        let sheet = PriceSheet::default();
        let p = Platform::trc();
        let split = sheet.attempts_cost(&p, 3, &[100.0, 250.0, 3.5]);
        let whole = sheet.cost(&p, 3, 353.5);
        assert!((split - whole).abs() < 1e-9);
    }

    #[test]
    fn zero_length_attempts_are_not_billed() {
        let sheet = PriceSheet {
            billing: Billing::PerHour,
        };
        let p = Platform::csp1();
        // cost() bills a minimum hour even at 0 s (cluster-style minimum),
        // but a zero-length *attempt* never acquired usable time.
        assert_eq!(sheet.attempts_cost(&p, 1, &[0.0, 0.0]), 0.0);
        assert!((sheet.attempts_cost(&p, 1, &[0.0, 60.0]) - p.price_per_node_hour).abs() < 1e-9);
        assert_eq!(sheet.attempts_cost(&p, 1, &[]), 0.0);
    }

    #[test]
    fn billed_seconds_round_up_per_attempt() {
        let per_second = PriceSheet::default();
        // Partial seconds round up; whole seconds bill exactly.
        assert_eq!(per_second.billed_seconds(0.4), 1);
        assert_eq!(per_second.billed_seconds(1.0), 1);
        assert_eq!(per_second.billed_seconds(1800.5), 1801);
        assert_eq!(per_second.billed_seconds(0.0), 0);
        // Two sub-second attempts bill two seconds, not one.
        assert_eq!(per_second.attempts_billed_node_seconds(1, &[0.4, 0.6]), 2);

        let per_hour = PriceSheet { billing: Billing::PerHour };
        // One-hour minimum, whole-hour round-up — matching cost().
        assert_eq!(per_hour.billed_seconds(0.0), 3600);
        assert_eq!(per_hour.billed_seconds(1800.0), 3600);
        assert_eq!(per_hour.billed_seconds(3600.0), 3600);
        assert_eq!(per_hour.billed_seconds(3660.0), 7200);
        // Two half-hour attempts bill two node-hours on 2 nodes each.
        assert_eq!(per_hour.attempts_billed_node_seconds(2, &[1800.0, 1800.0]), 4 * 3600);
        // Zero-length attempts never acquired usable time.
        assert_eq!(per_hour.attempts_billed_node_seconds(4, &[0.0, 0.0]), 0);
    }

    #[test]
    fn billed_seconds_saturate_at_the_u64_boundary() {
        let per_second = PriceSheet::default();
        let per_hour = PriceSheet { billing: Billing::PerHour };
        // An attempt past u64::MAX seconds pins to the boundary (for both
        // granularities), never wraps to a tiny bill.
        for sheet in [&per_second, &per_hour] {
            assert_eq!(sheet.billed_seconds(2e19), u64::MAX);
            assert_eq!(sheet.billed_seconds(f64::MAX), u64::MAX);
            assert_eq!(sheet.billed_seconds(f64::INFINITY), u64::MAX);
        }
        // Exactly at the boundary the per-hour round-up must not overflow:
        // ceil(u64::MAX / 3600) hours still fits in u64 seconds.
        let at_max = per_hour.billed_seconds(u64::MAX as f64);
        assert!(at_max >= u64::MAX - 3600 && at_max >= per_second.billed_seconds(u64::MAX as f64) - 3600);
        // The node multiply and the running sum saturate instead of
        // wrapping: a wrap here would report a near-zero bill for the
        // longest campaigns — exactly the silent failure the sweep's
        // "billed ≥ busy" invariant exists to catch.
        assert_eq!(per_second.attempts_billed_node_seconds(8, &[1e19]), u64::MAX);
        assert_eq!(per_second.attempts_billed_node_seconds(1, &[1e19, 1e19, 1e19]), u64::MAX);
        // Monotonicity survives saturation.
        let a = per_second.attempts_billed_node_seconds(1, &[1e18]);
        let b = per_second.attempts_billed_node_seconds(1, &[1e18, 1e18]);
        assert!(b >= a);
    }

    #[test]
    #[should_panic(expected = "bad attempt seconds")]
    fn billed_seconds_reject_nan() {
        PriceSheet::default().billed_seconds(f64::NAN);
    }
}

//! Temporally correlated performance noise.
//!
//! Cloud (and cluster) throughput varies run to run; the paper measures
//! this over 7 days at 6-hour intervals (its Table IV) and finds small
//! coefficients of variation (0.004-0.02). [`NoiseProcess`] generates a
//! multiplicative slowdown factor with a target CV and AR(1) temporal
//! correlation, so closely spaced samples co-vary (the "drift" visible in
//! the paper's Fig. 3a) while the long-run spread matches the target.

use hemocloud_rt::rng::Rng;

/// An AR(1) lognormal-ish multiplicative noise process on a 6-hour grid.
///
/// The latent state evolves on fixed 6-hour grid steps from a seeded
/// stream, so the *sample path is a deterministic function of the seed*:
/// two processes with the same seed asked for times on the same path give
/// consistent, correlated values — which lets independently constructed
/// simulator runs (one per measurement) share one platform noise history.
#[derive(Debug, Clone)]
pub struct NoiseProcess {
    rng: Rng,
    /// Target coefficient of variation of the factor.
    cv: f64,
    /// Correlation between consecutive grid samples.
    rho_per_step: f64,
    /// Grid spacing, hours.
    step_h: f64,
    /// Current latent state (standard normal marginally).
    state: f64,
    /// Grid steps taken so far.
    steps_taken: u64,
}

impl NoiseProcess {
    /// Create a process with the platform's CV, seeded deterministically.
    pub fn new(cv: f64, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&cv), "cv out of range");
        let mut rng = Rng::new(seed);
        let state = rng.gaussian();
        Self {
            rng,
            cv,
            rho_per_step: 0.6,
            step_h: 6.0,
            state,
            steps_taken: 0,
        }
    }

    /// Multiplicative slowdown factor (median 1) at absolute time
    /// `time_h` hours. The state advances along the seeded grid path to
    /// the requested time; equal or earlier times reuse the current state.
    pub fn factor_at(&mut self, time_h: f64) -> f64 {
        let target = (time_h.max(0.0) / self.step_h).floor() as u64;
        while self.steps_taken < target {
            let innovation = self.rng.gaussian();
            self.state = self.rho_per_step * self.state
                + (1.0 - self.rho_per_step * self.rho_per_step).sqrt() * innovation;
            self.steps_taken += 1;
        }
        // Lognormal with median 1: CV ≈ sigma for small sigma.
        (self.cv * self.state).exp()
    }

    /// An independent draw ignoring temporal correlation (for one-off
    /// runs).
    pub fn independent_factor(&mut self) -> f64 {
        (self.cv * self.rng.gaussian()).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = NoiseProcess::new(0.01, 7);
        let mut b = NoiseProcess::new(0.01, 7);
        for t in 1..20 {
            assert_eq!(a.factor_at(t as f64), b.factor_at(t as f64));
        }
    }

    #[test]
    fn factors_are_near_one() {
        let mut p = NoiseProcess::new(0.01, 3);
        for t in 1..100 {
            let f = p.factor_at(t as f64 * 6.0);
            assert!((0.9..1.1).contains(&f), "factor {f}");
        }
    }

    #[test]
    fn empirical_cv_matches_target() {
        let mut p = NoiseProcess::new(0.015, 11);
        let samples: Vec<f64> = (1..2000).map(|t| p.factor_at(t as f64 * 24.0)).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>()
            / (samples.len() - 1) as f64;
        let cv = var.sqrt() / mean;
        assert!(
            (cv - 0.015).abs() < 0.004,
            "empirical CV {cv} vs target 0.015"
        );
    }

    #[test]
    fn nearby_samples_are_correlated() {
        // Consecutive 1-hour samples should move together more than
        // samples 10 days apart.
        let mut p = NoiseProcess::new(0.02, 5);
        let mut near_diffs = Vec::new();
        let mut prev = p.factor_at(0.0);
        for t in 1..400 {
            let f = p.factor_at(t as f64);
            near_diffs.push((f - prev).abs());
            prev = f;
        }
        let mut q = NoiseProcess::new(0.02, 5);
        let mut far_diffs = Vec::new();
        let mut prev = q.factor_at(0.0);
        for t in 1..400 {
            let f = q.factor_at(t as f64 * 240.0);
            far_diffs.push((f - prev).abs());
            prev = f;
        }
        let near: f64 = near_diffs.iter().sum::<f64>() / near_diffs.len() as f64;
        let far: f64 = far_diffs.iter().sum::<f64>() / far_diffs.len() as f64;
        assert!(near < far, "near {near} !< far {far}");
    }

    #[test]
    fn time_does_not_go_backwards() {
        let mut p = NoiseProcess::new(0.01, 9);
        let f1 = p.factor_at(12.0);
        let f2 = p.factor_at(6.0); // earlier: reuse state
        assert_eq!(f1, f2);
    }

    #[test]
    #[should_panic(expected = "cv out of range")]
    fn absurd_cv_rejected() {
        let _ = NoiseProcess::new(1.5, 1);
    }
}

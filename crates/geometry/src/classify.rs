//! Cell classification: identifying wall fluid points.
//!
//! After voxelization every lumen cell is [`CellType::Bulk`]; this pass
//! demotes cells that touch solid (or the grid boundary) through any of the
//! 18 nonzero D3Q19 lattice directions to [`CellType::Wall`]. Inlet and
//! outlet cells keep their designation — their boundary condition already
//! overrides streaming.

use crate::voxel::{CellType, VoxelGrid};

/// The 18 nonzero D3Q19 lattice directions (6 axis + 12 edge vectors).
///
/// Duplicated from the LBM crate's lattice to keep the dependency pointing
/// the right way (lbm depends on geometry); the LBM crate asserts the two
/// sets agree.
pub const D3Q19_DIRECTIONS: [(i32, i32, i32); 18] = [
    (1, 0, 0),
    (-1, 0, 0),
    (0, 1, 0),
    (0, -1, 0),
    (0, 0, 1),
    (0, 0, -1),
    (1, 1, 0),
    (-1, -1, 0),
    (1, -1, 0),
    (-1, 1, 0),
    (1, 0, 1),
    (-1, 0, -1),
    (1, 0, -1),
    (-1, 0, 1),
    (0, 1, 1),
    (0, -1, -1),
    (0, 1, -1),
    (0, -1, 1),
];

/// Demote bulk cells adjacent to solid (through any D3Q19 direction) to
/// wall cells. Inlet/outlet cells are left untouched.
pub fn classify_walls(grid: &mut VoxelGrid) {
    let (nx, ny, nz) = grid.dims();
    let mut walls = Vec::new();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if grid.get(x, y, z) != CellType::Bulk {
                    continue;
                }
                let touches_solid = D3Q19_DIRECTIONS
                    .iter()
                    .any(|&(dx, dy, dz)| grid.get_offset(x, y, z, dx, dy, dz) == CellType::Solid);
                if touches_solid {
                    walls.push(grid.index(x, y, z));
                }
            }
        }
    }
    for idx in walls {
        grid.set_linear(idx, CellType::Wall);
    }
}

/// Number of solid neighbors (over D3Q19 directions) of the cell at
/// `(x, y, z)` — the count of bounce-back links a wall cell carries.
pub fn solid_link_count(grid: &VoxelGrid, x: usize, y: usize, z: usize) -> usize {
    D3Q19_DIRECTIONS
        .iter()
        .filter(|&&(dx, dy, dz)| grid.get_offset(x, y, z, dx, dy, dz) == CellType::Solid)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_fluid_box() -> VoxelGrid {
        VoxelGrid::filled(5, 5, 5, 1.0, CellType::Bulk)
    }

    #[test]
    fn open_box_boundary_becomes_wall() {
        // No padding: cells on the grid boundary see out-of-grid as solid.
        let mut g = all_fluid_box();
        classify_walls(&mut g);
        assert_eq!(g.get(0, 0, 0), CellType::Wall);
        assert_eq!(g.get(2, 2, 2), CellType::Bulk);
        // Exactly the interior 3x3x3 block stays bulk.
        assert_eq!(g.count(CellType::Bulk), 27);
        assert_eq!(g.count(CellType::Wall), 125 - 27);
    }

    #[test]
    fn diagonal_adjacency_counts() {
        // A solid cell at a face-diagonal neighbor makes a cell a wall even
        // though no axis neighbor is solid.
        let mut g = VoxelGrid::filled(7, 7, 7, 1.0, CellType::Bulk);
        g.set(4, 4, 3, CellType::Solid);
        classify_walls(&mut g);
        // (3,3,3) has offset (1,1,0) to the solid: a D3Q19 edge direction.
        assert_eq!(g.get(3, 3, 3), CellType::Wall);
        // (2,2,3) is two steps away; but it is interior otherwise? It's at
        // distance >1 from both solid and boundary... boundary of 7-grid is
        // at 0 and 6, so (2,2,3) is interior and stays bulk.
        assert_eq!(g.get(2, 2, 3), CellType::Bulk);
    }

    #[test]
    fn corner_diagonal_is_not_a_d3q19_direction() {
        // (1,1,1) offsets are NOT part of D3Q19; a solid cell there must not
        // demote the fluid cell.
        let mut g = VoxelGrid::filled(7, 7, 7, 1.0, CellType::Bulk);
        g.set(4, 4, 4, CellType::Solid);
        classify_walls(&mut g);
        assert_eq!(g.get(3, 3, 3), CellType::Bulk);
    }

    #[test]
    fn inlet_outlet_cells_keep_role() {
        let mut g = all_fluid_box();
        g.set(0, 2, 2, CellType::Inlet);
        g.set(4, 2, 2, CellType::Outlet);
        classify_walls(&mut g);
        assert_eq!(g.get(0, 2, 2), CellType::Inlet);
        assert_eq!(g.get(4, 2, 2), CellType::Outlet);
    }

    #[test]
    fn solid_link_count_in_corner() {
        let g = all_fluid_box();
        // The corner cell (0,0,0) has 3 axis directions and 6 edge
        // directions leaving the grid... count them directly against the
        // direction table for robustness.
        let expect = D3Q19_DIRECTIONS
            .iter()
            .filter(|&&(dx, dy, dz)| dx < 0 || dy < 0 || dz < 0)
            .count();
        assert_eq!(solid_link_count(&g, 0, 0, 0), expect);
        assert_eq!(solid_link_count(&g, 2, 2, 2), 0);
    }

    #[test]
    fn direction_table_is_symmetric() {
        // Every direction's opposite is also in the table.
        for &(dx, dy, dz) in &D3Q19_DIRECTIONS {
            assert!(
                D3Q19_DIRECTIONS.contains(&(-dx, -dy, -dz)),
                "missing opposite of ({dx},{dy},{dz})"
            );
        }
        assert_eq!(D3Q19_DIRECTIONS.len(), 18);
    }
}

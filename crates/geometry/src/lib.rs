//! Voxelized vascular geometries for hemodynamic simulation.
//!
//! The paper evaluates three increasingly complex geometries (its Fig. 2):
//!
//! 1. an **idealized cylindrical vessel** — easily divided for parallel
//!    simulation but with high communication cost (large contiguous
//!    cross-sections);
//! 2. an **aorta** — anatomically realistic, typical communication and
//!    load balancing;
//! 3. a **cerebral vasculature** — many thin vessels, many wall points,
//!    low communication.
//!
//! The original geometries come from the Vascular Model Repository, which
//! is not available here; [`anatomy`] provides parametric synthetic
//! equivalents tuned to land in the same regimes (see DESIGN.md §2). All
//! geometries are represented as a [`voxel::VoxelGrid`] of cell types
//! (solid, bulk fluid, wall fluid, inlet, outlet) built from signed
//! distance fields ([`shapes`]) swept along centerlines ([`tube`]) and then
//! classified ([`classify`]). [`stats`] summarizes the point-type census
//! that drives the performance model's byte counting.

pub mod anatomy;
pub mod classify;
pub mod shapes;
pub mod stats;
pub mod tube;
pub mod voxel;

pub use stats::GeometryStats;
pub use voxel::{CellType, VoxelGrid};

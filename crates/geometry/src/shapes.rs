//! Signed distance functions (SDFs) for vessel lumen construction.
//!
//! All anatomies are built as unions of *tapered capsules* — line segments
//! with a linearly varying radius — which model vessel segments well and
//! have a cheap, robust distance function. An SDF is negative inside the
//! shape; voxelization marks a cell fluid when the SDF at its centre is
//! negative.

/// A point or vector in 3-D space (millimetres).
///
/// Deliberately provides inherent `add`/`sub` methods rather than operator
/// overloads: the handful of call sites stay explicit and the type stays
/// dependency- and boilerplate-free.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Vec3 {
    /// x component.
    pub x: f64,
    /// y component.
    pub y: f64,
    /// z component.
    pub z: f64,
}

#[allow(clippy::should_implement_trait)] // explicit add/sub by design
impl Vec3 {
    /// Construct from components.
    #[inline]
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Self { x, y, z }
    }

    /// Componentwise sum.
    #[inline]
    pub fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }

    /// Componentwise difference.
    #[inline]
    pub fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }

    /// Scalar multiple.
    #[inline]
    pub fn scale(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f64 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Unit vector in this direction.
    ///
    /// # Panics
    /// Panics (in debug builds) on the zero vector.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        debug_assert!(n > 0.0, "normalizing zero vector");
        self.scale(1.0 / n)
    }

    /// Cross product.
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3::new(
            self.y * o.z - self.z * o.y,
            self.z * o.x - self.x * o.z,
            self.x * o.y - self.y * o.x,
        )
    }
}

/// Shapes that expose a signed distance: negative inside, positive outside.
pub trait Sdf {
    /// Signed distance from `p` to the surface, in the same units as the
    /// coordinates (mm).
    fn distance(&self, p: Vec3) -> f64;
}

/// A sphere.
#[derive(Debug, Clone, Copy)]
pub struct Sphere {
    /// Centre.
    pub center: Vec3,
    /// Radius (mm).
    pub radius: f64,
}

impl Sdf for Sphere {
    #[inline]
    fn distance(&self, p: Vec3) -> f64 {
        p.sub(self.center).norm() - self.radius
    }
}

/// A line segment swept by a linearly varying radius: a tapered capsule.
///
/// This is the building block for vessels: `radius_a` at endpoint `a`
/// tapers to `radius_b` at endpoint `b`, with hemispherical caps. The
/// distance below is the standard capsule distance with the radius
/// interpolated at the closest parameter — exact for mild tapers, and more
/// than accurate enough at voxel resolution.
#[derive(Debug, Clone, Copy)]
pub struct TaperedCapsule {
    /// First endpoint.
    pub a: Vec3,
    /// Second endpoint.
    pub b: Vec3,
    /// Radius at `a` (mm).
    pub radius_a: f64,
    /// Radius at `b` (mm).
    pub radius_b: f64,
}

impl Sdf for TaperedCapsule {
    #[inline]
    fn distance(&self, p: Vec3) -> f64 {
        let ab = self.b.sub(self.a);
        let len2 = ab.dot(ab);
        let t = if len2 == 0.0 {
            0.0
        } else {
            (p.sub(self.a).dot(ab) / len2).clamp(0.0, 1.0)
        };
        let closest = self.a.add(ab.scale(t));
        let r = self.radius_a + t * (self.radius_b - self.radius_a);
        p.sub(closest).norm() - r
    }
}

/// The union of a collection of shapes: minimum of their distances.
pub struct Union<S> {
    shapes: Vec<S>,
}

impl<S: Sdf> Union<S> {
    /// Build a union; empty unions are permitted and are "nowhere"
    /// (distance +∞).
    pub fn new(shapes: Vec<S>) -> Self {
        Self { shapes }
    }

    /// Add a shape to the union.
    pub fn push(&mut self, s: S) {
        self.shapes.push(s);
    }

    /// Number of member shapes.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Whether the union has no members.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }
}

impl<S: Sdf> Sdf for Union<S> {
    #[inline]
    fn distance(&self, p: Vec3) -> f64 {
        self.shapes
            .iter()
            .map(|s| s.distance(p))
            .fold(f64::INFINITY, f64::min)
    }
}

/// An infinite cylinder along an axis through `origin` with direction
/// `axis` (unit) and constant `radius`. Used for the idealized vessel.
#[derive(Debug, Clone, Copy)]
pub struct InfiniteCylinder {
    /// A point on the axis.
    pub origin: Vec3,
    /// Unit axis direction.
    pub axis: Vec3,
    /// Radius (mm).
    pub radius: f64,
}

impl Sdf for InfiniteCylinder {
    #[inline]
    fn distance(&self, p: Vec3) -> f64 {
        let d = p.sub(self.origin);
        let along = d.dot(self.axis);
        let radial = d.sub(self.axis.scale(along));
        radial.norm() - self.radius
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec3_algebra() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -5.0, 6.0);
        assert_eq!(a.add(b), Vec3::new(5.0, -3.0, 9.0));
        assert_eq!(a.sub(b), Vec3::new(-3.0, 7.0, -3.0));
        assert_eq!(a.dot(b), 4.0 - 10.0 + 18.0);
        assert!((Vec3::new(3.0, 4.0, 0.0).norm() - 5.0).abs() < 1e-12);
        let c = Vec3::new(1.0, 0.0, 0.0).cross(Vec3::new(0.0, 1.0, 0.0));
        assert_eq!(c, Vec3::new(0.0, 0.0, 1.0));
    }

    #[test]
    fn sphere_distance_sign() {
        let s = Sphere {
            center: Vec3::new(0.0, 0.0, 0.0),
            radius: 2.0,
        };
        assert!(s.distance(Vec3::new(0.0, 0.0, 0.0)) < 0.0);
        assert!(s.distance(Vec3::new(3.0, 0.0, 0.0)) > 0.0);
        assert!(s.distance(Vec3::new(2.0, 0.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn capsule_reduces_to_sphere_on_degenerate_segment() {
        let c = TaperedCapsule {
            a: Vec3::new(1.0, 1.0, 1.0),
            b: Vec3::new(1.0, 1.0, 1.0),
            radius_a: 0.5,
            radius_b: 0.5,
        };
        let s = Sphere {
            center: Vec3::new(1.0, 1.0, 1.0),
            radius: 0.5,
        };
        for p in [
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(1.2, 1.0, 1.0),
            Vec3::new(5.0, -2.0, 3.0),
        ] {
            assert!((c.distance(p) - s.distance(p)).abs() < 1e-12);
        }
    }

    #[test]
    fn capsule_taper_interpolates_radius() {
        let c = TaperedCapsule {
            a: Vec3::new(0.0, 0.0, 0.0),
            b: Vec3::new(10.0, 0.0, 0.0),
            radius_a: 2.0,
            radius_b: 1.0,
        };
        // At the midpoint the radius is 1.5; a point 1.5 off-axis is on the
        // surface.
        assert!(c.distance(Vec3::new(5.0, 1.5, 0.0)).abs() < 1e-12);
        // Near endpoint a the radius is 2.
        assert!(c.distance(Vec3::new(0.0, 2.0, 0.0)).abs() < 1e-12);
    }

    #[test]
    fn capsule_clamps_to_endpoints() {
        let c = TaperedCapsule {
            a: Vec3::new(0.0, 0.0, 0.0),
            b: Vec3::new(10.0, 0.0, 0.0),
            radius_a: 1.0,
            radius_b: 1.0,
        };
        // Beyond endpoint b, distance is measured to the cap.
        assert!((c.distance(Vec3::new(12.0, 0.0, 0.0)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn union_takes_minimum() {
        let u = Union::new(vec![
            Sphere {
                center: Vec3::new(0.0, 0.0, 0.0),
                radius: 1.0,
            },
            Sphere {
                center: Vec3::new(10.0, 0.0, 0.0),
                radius: 1.0,
            },
        ]);
        assert!(u.distance(Vec3::new(0.0, 0.0, 0.0)) < 0.0);
        assert!(u.distance(Vec3::new(10.0, 0.0, 0.0)) < 0.0);
        assert!(u.distance(Vec3::new(5.0, 0.0, 0.0)) > 0.0);
    }

    #[test]
    fn empty_union_is_nowhere() {
        let u: Union<Sphere> = Union::new(vec![]);
        assert!(u.is_empty());
        assert_eq!(u.distance(Vec3::new(0.0, 0.0, 0.0)), f64::INFINITY);
    }

    #[test]
    fn infinite_cylinder_distance() {
        let c = InfiniteCylinder {
            origin: Vec3::new(0.0, 0.0, 0.0),
            axis: Vec3::new(0.0, 0.0, 1.0),
            radius: 2.0,
        };
        // Distance is purely radial, independent of z.
        for z in [-100.0, 0.0, 55.0] {
            assert!((c.distance(Vec3::new(2.0, 0.0, z))).abs() < 1e-12);
            assert!((c.distance(Vec3::new(5.0, 0.0, z)) - 3.0).abs() < 1e-12);
        }
    }
}

//! Synthetic cerebral vasculature (paper Fig. 2C).
//!
//! A recursive bifurcating arterial tree seeded from a single feeding
//! vessel (internal-carotid scale). Child radii follow Murray's law
//! (`r³ = r₁³ + r₂³`) with a mild left/right asymmetry; branch lengths
//! scale with radius; branching planes rotate pseudo-randomly (but
//! reproducibly) between generations. The result is many thin, spread-out
//! vessels: a high wall-point fraction and low communication surface —
//! the geometry the paper reports performing best.

use super::Lcg;
use crate::shapes::Vec3;
use crate::tube::{Tube, VesselNetwork};
use crate::voxel::VoxelGrid;

/// Parameters of the synthetic cerebral tree.
#[derive(Debug, Clone, Copy)]
pub struct CerebralSpec {
    /// Radius of the feeding vessel, millimetres.
    pub root_radius_mm: f64,
    /// Length of the feeding vessel, millimetres.
    pub root_length_mm: f64,
    /// Number of bifurcation generations (leaves = 2^generations).
    pub generations: usize,
    /// Branch length as a multiple of branch radius.
    pub length_radius_ratio: f64,
    /// Half-angle between the two children of a bifurcation, radians.
    pub branch_half_angle: f64,
    /// Murray's-law asymmetry: the larger child takes this share of the
    /// parent's cubed radius (0.5 = symmetric).
    pub asymmetry: f64,
    /// Voxels across the root diameter.
    pub resolution: usize,
    /// Seed for the reproducible branching-plane rotations.
    pub seed: u64,
}

impl Default for CerebralSpec {
    fn default() -> Self {
        Self {
            root_radius_mm: 2.5,
            root_length_mm: 18.0,
            generations: 5,
            length_radius_ratio: 9.0,
            branch_half_angle: 0.55,
            asymmetry: 0.58,
            resolution: 10,
            seed: 42,
        }
    }
}

impl CerebralSpec {
    /// Set the number of voxels across the root diameter.
    pub fn with_resolution(mut self, resolution: usize) -> Self {
        assert!(resolution >= 4, "resolution below 4 voxels is degenerate");
        self.resolution = resolution;
        self
    }

    /// Set the number of bifurcation generations.
    pub fn with_generations(mut self, generations: usize) -> Self {
        assert!((1..=9).contains(&generations), "1..=9 generations");
        self.generations = generations;
        self
    }

    /// Set the branching seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Voxel spacing implied by the resolution.
    pub fn dx_mm(&self) -> f64 {
        2.0 * self.root_radius_mm / self.resolution as f64
    }

    /// Grow the bifurcating network.
    pub fn network(&self) -> VesselNetwork {
        let mut net = VesselNetwork::new();
        let mut rng = Lcg::new(self.seed);

        let root_start = Vec3::new(0.0, 0.0, 0.0);
        let root_dir = Vec3::new(0.0, 0.0, 1.0);
        let root_end = root_start.add(root_dir.scale(self.root_length_mm));
        net.add_tube(Tube::straight(
            root_start,
            root_end,
            self.root_radius_mm,
            self.root_radius_mm * 0.95,
        ));
        net.add_inlet(root_start, self.root_radius_mm * 1.3);

        // Depth-first growth; each frame is (tip position, direction,
        // radius, remaining generations).
        let mut stack = vec![(root_end, root_dir, self.root_radius_mm * 0.95, self.generations)];
        while let Some((tip, dir, radius, gens)) = stack.pop() {
            if gens == 0 {
                net.add_outlet(tip, radius * 1.4);
                continue;
            }
            // Murray's law with asymmetry: r_large³ = s·r³, r_small³ = (1-s)·r³.
            let s = self.asymmetry;
            let r_large = radius * s.cbrt();
            let r_small = radius * (1.0 - s).cbrt();

            // Branching plane: a unit vector perpendicular to `dir`, with a
            // pseudo-random azimuth so successive generations spread in 3-D.
            let azimuth = rng.range(0.0, std::f64::consts::TAU);
            let seed_axis = if dir.x.abs() < 0.9 {
                Vec3::new(1.0, 0.0, 0.0)
            } else {
                Vec3::new(0.0, 1.0, 0.0)
            };
            let u = dir.cross(seed_axis).normalized();
            let v = dir.cross(u);
            let perp = u.scale(azimuth.cos()).add(v.scale(azimuth.sin()));

            let jitter = rng.range(0.85, 1.15);
            let angle = self.branch_half_angle * jitter;
            let d1 = dir
                .scale(angle.cos())
                .add(perp.scale(angle.sin()))
                .normalized();
            let d2 = dir
                .scale(angle.cos())
                .sub(perp.scale(angle.sin()))
                .normalized();

            for (d, r) in [(d1, r_large), (d2, r_small)] {
                let len = self.length_radius_ratio * r * rng.range(0.9, 1.1);
                let end = tip.add(d.scale(len));
                net.add_tube(Tube::straight(tip, end, r, r * 0.92));
                stack.push((end, d, r * 0.92, gens - 1));
            }
        }
        net
    }

    /// Voxelize at the spec's resolution.
    pub fn build(&self) -> VoxelGrid {
        self.network().voxelize(self.dx_mm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GeometryStats;

    #[test]
    fn tree_has_expected_counts() {
        let spec = CerebralSpec::default().with_generations(4);
        let net = spec.network();
        // 1 root + sum of 2^g branches for g in 1..=4 = 1 + 2+4+8+16 = 31.
        assert_eq!(net.tubes().len(), 31);
        assert_eq!(net.inlets().len(), 1);
        assert_eq!(net.outlets().len(), 16);
    }

    #[test]
    fn murrays_law_preserves_cubed_radius() {
        let spec = CerebralSpec::default();
        let r = 2.0f64;
        let s = spec.asymmetry;
        let r1 = r * s.cbrt();
        let r2 = r * (1.0 - s).cbrt();
        assert!((r1.powi(3) + r2.powi(3) - r.powi(3)).abs() < 1e-12);
        assert!(r1 > r2);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = CerebralSpec::default().with_generations(3).network();
        let b = CerebralSpec::default().with_generations(3).network();
        assert_eq!(a.tubes().len(), b.tubes().len());
        for (ta, tb) in a.tubes().iter().zip(b.tubes()) {
            assert_eq!(ta.end(), tb.end());
        }
    }

    #[test]
    fn different_seed_changes_layout() {
        let a = CerebralSpec::default().with_generations(3).network();
        let b = CerebralSpec::default()
            .with_generations(3)
            .with_seed(1234)
            .network();
        let differs = a
            .tubes()
            .iter()
            .zip(b.tubes())
            .any(|(ta, tb)| ta.end() != tb.end());
        assert!(differs);
    }

    #[test]
    fn wall_heavy_compared_to_cylinder() {
        // The defining property of the cerebral case: a much larger wall
        // fraction than the idealized cylinder at matched resolution.
        let cere = GeometryStats::measure(
            &CerebralSpec::default()
                .with_generations(4)
                .with_resolution(8)
                .build(),
        );
        let cyl = GeometryStats::measure(
            &crate::anatomy::CylinderSpec::default()
                .with_resolution(8)
                .build(),
        );
        assert!(
            cere.wall_fraction() > cyl.wall_fraction(),
            "cerebral {} vs cylinder {}",
            cere.wall_fraction(),
            cyl.wall_fraction()
        );
        assert!(
            cere.fluid_fraction < cyl.fluid_fraction,
            "cerebral should be sparse in its bounding box"
        );
    }

    #[test]
    #[should_panic(expected = "1..=9 generations")]
    fn zero_generations_rejected() {
        let _ = CerebralSpec::default().with_generations(0);
    }
}

//! Saccular (berry) aneurysm on a parent vessel.
//!
//! A straight parent vessel with a spherical sac rising from its midpoint
//! through a narrow neck. Built entirely from the existing swept-capsule
//! machinery: the neck-to-dome tube is a single [`Tube`] segment whose
//! tapered capsule ends in a sphere of the sac radius centred at the dome
//! point, so the sac is an exact sphere SDF without a dedicated shape. The
//! sac adds a large bulk cavity off the main flow axis — poor surface-to-
//! volume locality for the decomposer and a wall-heavy dome, the opposite
//! stress to the stenosis throat.

use crate::shapes::Vec3;
use crate::tube::{Tube, VesselNetwork};
use crate::voxel::VoxelGrid;

/// Parameters of the saccular aneurysm. Lengths in millimetres.
#[derive(Debug, Clone, Copy)]
pub struct AneurysmSpec {
    /// Parent vessel lumen radius.
    pub parent_radius_mm: f64,
    /// Parent vessel length.
    pub parent_length_mm: f64,
    /// Radius of the spherical sac.
    pub sac_radius_mm: f64,
    /// Radius of the neck where the sac meets the parent vessel.
    pub neck_radius_mm: f64,
    /// Distance from the parent centerline to the sac centre.
    pub dome_height_mm: f64,
    /// Voxels across the parent diameter.
    pub resolution: usize,
}

impl Default for AneurysmSpec {
    fn default() -> Self {
        Self {
            parent_radius_mm: 4.0,
            parent_length_mm: 50.0,
            sac_radius_mm: 6.0,
            neck_radius_mm: 2.5,
            dome_height_mm: 9.0,
            resolution: 16,
        }
    }
}

impl AneurysmSpec {
    /// Set the number of voxels across the parent diameter.
    pub fn with_resolution(mut self, resolution: usize) -> Self {
        assert!(resolution >= 6, "resolution below 6 voxels is degenerate");
        self.resolution = resolution;
        self
    }

    /// Set the sac and neck radii.
    pub fn with_sac(mut self, sac_radius_mm: f64, neck_radius_mm: f64) -> Self {
        assert!(sac_radius_mm > 0.0 && neck_radius_mm > 0.0);
        assert!(
            neck_radius_mm <= sac_radius_mm,
            "neck {neck_radius_mm} wider than sac {sac_radius_mm}"
        );
        self.sac_radius_mm = sac_radius_mm;
        self.neck_radius_mm = neck_radius_mm;
        self
    }

    /// Voxel spacing implied by the resolution.
    pub fn dx_mm(&self) -> f64 {
        2.0 * self.parent_radius_mm / self.resolution as f64
    }

    /// The vessel network: parent tube along +z with caps, plus the
    /// neck-to-dome tube rising along +x from the parent midpoint. The
    /// dome end's capsule cap *is* the spherical sac.
    pub fn network(&self) -> VesselNetwork {
        let mut net = VesselNetwork::new();
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 0.0, self.parent_length_mm);
        net.add_tube(Tube::straight(a, b, self.parent_radius_mm, self.parent_radius_mm));

        let mid = Vec3::new(0.0, 0.0, self.parent_length_mm * 0.5);
        let dome = Vec3::new(self.dome_height_mm, 0.0, self.parent_length_mm * 0.5);
        net.add_tube(Tube::straight(mid, dome, self.neck_radius_mm, self.sac_radius_mm));

        let cap = self.parent_radius_mm * 1.2;
        net.add_inlet(a, cap);
        net.add_outlet(b, cap);
        net
    }

    /// Voxelize at the spec's resolution.
    pub fn build(&self) -> VoxelGrid {
        self.network().voxelize(self.dx_mm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GeometryStats;

    #[test]
    fn default_aneurysm_builds_with_all_roles() {
        let g = AneurysmSpec::default().with_resolution(12).build();
        let s = GeometryStats::measure(&g);
        assert!(s.bulk_points > 0);
        assert!(s.wall_points > 0);
        assert!(s.inlet_points > 0);
        assert!(s.outlet_points > 0);
    }

    #[test]
    fn sac_adds_fluid_over_the_bare_parent() {
        // The same parent vessel without the sac, voxelized at the same
        // spacing, must hold noticeably fewer fluid cells.
        let spec = AneurysmSpec::default().with_resolution(12);
        let with_sac = spec.build().fluid_count();
        let mut bare = VesselNetwork::new();
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 0.0, spec.parent_length_mm);
        bare.add_tube(Tube::straight(a, b, spec.parent_radius_mm, spec.parent_radius_mm));
        bare.add_inlet(a, spec.parent_radius_mm * 1.2);
        bare.add_outlet(b, spec.parent_radius_mm * 1.2);
        let without_sac = bare.voxelize(spec.dx_mm()).fluid_count();
        assert!(
            with_sac as f64 > without_sac as f64 * 1.3,
            "sac added too little: {with_sac} vs {without_sac}"
        );
    }

    #[test]
    fn sac_fluid_extends_past_the_parent_lumen() {
        // Some fluid must sit beyond the parent lumen in +x: the dome.
        let spec = AneurysmSpec::default().with_resolution(12);
        let g = spec.build();
        let (nx, ny, nz) = g.dims();
        let dx = g.dx_mm();
        // x coordinate (mm) of the voxel column relative to the centerline:
        // the parent axis sits at the minimum-x end of the sac extent, so
        // find the maximum fluid x and check it clears the parent radius.
        let mut max_fluid_x = 0usize;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    if g.get(x, y, z).is_fluid() && x > max_fluid_x {
                        max_fluid_x = x;
                    }
                }
            }
        }
        let span_mm = max_fluid_x as f64 * dx;
        let parent_span_mm = 2.0 * spec.parent_radius_mm;
        assert!(
            span_mm > parent_span_mm + spec.sac_radius_mm,
            "fluid x-span {span_mm:.1} mm does not clear the parent ({parent_span_mm:.1} mm) by a sac radius"
        );
    }

    #[test]
    fn wall_heavier_than_cylinder() {
        let an = GeometryStats::measure(&AneurysmSpec::default().with_resolution(12).build());
        let cyl = GeometryStats::measure(
            &crate::anatomy::CylinderSpec::default().with_resolution(12).build(),
        );
        assert!(
            an.fluid_fraction < cyl.fluid_fraction,
            "aneurysm {} vs cylinder {}",
            an.fluid_fraction,
            cyl.fluid_fraction
        );
    }

    #[test]
    #[should_panic(expected = "wider than sac")]
    fn neck_wider_than_sac_rejected() {
        let _ = AneurysmSpec::default().with_sac(3.0, 4.0);
    }
}

//! The idealized cylindrical vessel (paper Fig. 2A).
//!
//! A straight constant-radius tube: trivially load balanced, densely
//! packed, and therefore communication-heavy when decomposed — the paper's
//! stress case for interconnect quality (Figs. 9-10 study exactly this
//! geometry on CSP-2).

use crate::shapes::Vec3;
use crate::tube::{Tube, VesselNetwork};
use crate::voxel::VoxelGrid;

/// Parameters for the idealized cylinder. Defaults follow a femoral-artery
/// scale: 10 mm diameter, 60 mm length.
#[derive(Debug, Clone, Copy)]
pub struct CylinderSpec {
    /// Lumen radius in millimetres.
    pub radius_mm: f64,
    /// Vessel length in millimetres.
    pub length_mm: f64,
    /// Voxels across the diameter.
    pub resolution: usize,
}

impl Default for CylinderSpec {
    fn default() -> Self {
        Self {
            radius_mm: 5.0,
            length_mm: 60.0,
            resolution: 20,
        }
    }
}

impl CylinderSpec {
    /// Set the number of voxels across the diameter.
    pub fn with_resolution(mut self, resolution: usize) -> Self {
        assert!(resolution >= 4, "resolution below 4 voxels is degenerate");
        self.resolution = resolution;
        self
    }

    /// Set physical dimensions.
    pub fn with_dimensions(mut self, radius_mm: f64, length_mm: f64) -> Self {
        assert!(radius_mm > 0.0 && length_mm > 0.0);
        self.radius_mm = radius_mm;
        self.length_mm = length_mm;
        self
    }

    /// Voxel spacing implied by the resolution.
    pub fn dx_mm(&self) -> f64 {
        2.0 * self.radius_mm / self.resolution as f64
    }

    /// The vessel network (one tube along +z with caps at both ends).
    pub fn network(&self) -> VesselNetwork {
        let mut net = VesselNetwork::new();
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(0.0, 0.0, self.length_mm);
        net.add_tube(Tube::straight(a, b, self.radius_mm, self.radius_mm));
        // Cap spheres slightly larger than the lumen radius so every fluid
        // cell in the end cross-sections is captured.
        let cap = self.radius_mm * 1.2;
        net.add_inlet(a, cap);
        net.add_outlet(b, cap);
        net
    }

    /// Voxelize at the spec's resolution.
    pub fn build(&self) -> VoxelGrid {
        self.network().voxelize(self.dx_mm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GeometryStats;
    use crate::voxel::CellType;

    #[test]
    fn default_cylinder_builds() {
        let g = CylinderSpec::default().with_resolution(12).build();
        let s = GeometryStats::measure(&g);
        assert!(s.fluid_points > 0);
        assert!(s.inlet_points > 0);
        assert!(s.outlet_points > 0);
        // A cylinder is mostly bulk: it is the paper's "efficiently packed"
        // case.
        assert!(
            s.bulk_wall_ratio > 1.0,
            "bulk/wall = {}",
            s.bulk_wall_ratio
        );
    }

    #[test]
    fn fluid_fraction_approximates_pi_over_4() {
        // Lumen volume / bounding box of the tube section ≈ π r² / (2r)² =
        // π/4 ≈ 0.785. The padded grid dilutes this somewhat; check a loose
        // band.
        let g = CylinderSpec::default().with_resolution(24).build();
        let s = GeometryStats::measure(&g);
        assert!(
            (0.4..0.8).contains(&s.fluid_fraction),
            "fluid fraction = {}",
            s.fluid_fraction
        );
    }

    #[test]
    fn resolution_scales_point_count_cubically() {
        let lo = GeometryStats::measure(&CylinderSpec::default().with_resolution(8).build());
        let hi = GeometryStats::measure(&CylinderSpec::default().with_resolution(16).build());
        let ratio = hi.fluid_points as f64 / lo.fluid_points as f64;
        // Doubling the linear resolution multiplies points by ~8.
        assert!((5.0..12.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn caps_are_at_opposite_ends() {
        let g = CylinderSpec::default().with_resolution(10).build();
        let (_, _, nz) = g.dims();
        let mut inlet_z_sum = 0usize;
        let mut inlet_n = 0usize;
        let mut outlet_z_sum = 0usize;
        let mut outlet_n = 0usize;
        for (_, _, z, c) in g.iter_cells() {
            match c {
                CellType::Inlet => {
                    inlet_z_sum += z;
                    inlet_n += 1;
                }
                CellType::Outlet => {
                    outlet_z_sum += z;
                    outlet_n += 1;
                }
                _ => {}
            }
        }
        let inlet_z = inlet_z_sum as f64 / inlet_n as f64;
        let outlet_z = outlet_z_sum as f64 / outlet_n as f64;
        assert!(inlet_z < nz as f64 * 0.3, "inlet mean z = {inlet_z}");
        assert!(outlet_z > nz as f64 * 0.7, "outlet mean z = {outlet_z}");
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn tiny_resolution_rejected() {
        let _ = CylinderSpec::default().with_resolution(2);
    }
}

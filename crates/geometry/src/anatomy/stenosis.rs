//! Stenosed vessel: a straight tube with a tapered throat.
//!
//! A focal narrowing (by default 50% by diameter) in the middle of an
//! otherwise idealized cylindrical vessel. The throat concentrates wall
//! points and shrinks the cross-section the decomposer has to cut through,
//! so the geometry sits between the cylinder (dense, bulk-heavy) and the
//! cerebral tree (sparse, wall-heavy) — a distinct point in scenario space
//! for the sweep harness, and the canonical clinical target for
//! hemodynamic simulation (fractional flow reserve).

use crate::shapes::Vec3;
use crate::tube::{Tube, VesselNetwork};
use crate::voxel::VoxelGrid;

/// Parameters of the stenosed vessel. Lengths in millimetres.
#[derive(Debug, Clone, Copy)]
pub struct StenosisSpec {
    /// Healthy lumen radius away from the lesion.
    pub radius_mm: f64,
    /// Total vessel length.
    pub length_mm: f64,
    /// Diameter reduction at the throat, in `[0, 1)`. 0.5 means the throat
    /// diameter is half the healthy diameter (a "50% stenosis").
    pub severity: f64,
    /// Axial extent of the tapered lesion (shoulder to shoulder).
    pub lesion_length_mm: f64,
    /// Voxels across the healthy diameter.
    pub resolution: usize,
}

impl Default for StenosisSpec {
    fn default() -> Self {
        Self {
            radius_mm: 5.0,
            length_mm: 60.0,
            severity: 0.5,
            lesion_length_mm: 20.0,
            resolution: 20,
        }
    }
}

impl StenosisSpec {
    /// Set the number of voxels across the healthy diameter.
    pub fn with_resolution(mut self, resolution: usize) -> Self {
        assert!(resolution >= 6, "resolution below 6 voxels is degenerate");
        self.resolution = resolution;
        self
    }

    /// Set the diameter reduction at the throat.
    pub fn with_severity(mut self, severity: f64) -> Self {
        assert!(
            (0.0..0.9).contains(&severity),
            "severity {severity} outside [0, 0.9): the throat must keep a lumen"
        );
        self.severity = severity;
        self
    }

    /// Radius at the narrowest point of the throat.
    pub fn throat_radius_mm(&self) -> f64 {
        self.radius_mm * (1.0 - self.severity)
    }

    /// Voxel spacing implied by the resolution.
    pub fn dx_mm(&self) -> f64 {
        2.0 * self.radius_mm / self.resolution as f64
    }

    /// The vessel network: one polyline tube along +z whose per-point radii
    /// dip to the throat value at mid-vessel, with caps at both ends.
    pub fn network(&self) -> VesselNetwork {
        let mut net = VesselNetwork::new();
        let half_lesion = (self.lesion_length_mm * 0.5).min(self.length_mm * 0.4);
        let mid = self.length_mm * 0.5;
        let z = |v: f64| Vec3::new(0.0, 0.0, v);
        let points = vec![
            z(0.0),
            z(mid - half_lesion),
            z(mid),
            z(mid + half_lesion),
            z(self.length_mm),
        ];
        let radii = vec![
            self.radius_mm,
            self.radius_mm,
            self.throat_radius_mm(),
            self.radius_mm,
            self.radius_mm,
        ];
        net.add_tube(Tube::new(points, radii));
        let cap = self.radius_mm * 1.2;
        net.add_inlet(Vec3::new(0.0, 0.0, 0.0), cap);
        net.add_outlet(Vec3::new(0.0, 0.0, self.length_mm), cap);
        net
    }

    /// Voxelize at the spec's resolution.
    pub fn build(&self) -> VoxelGrid {
        self.network().voxelize(self.dx_mm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GeometryStats;
    use crate::voxel::CellType;

    #[test]
    fn default_stenosis_builds_with_all_roles() {
        let g = StenosisSpec::default().with_resolution(12).build();
        let s = GeometryStats::measure(&g);
        assert!(s.bulk_points > 0);
        assert!(s.wall_points > 0);
        assert!(s.inlet_points > 0);
        assert!(s.outlet_points > 0);
    }

    #[test]
    fn throat_narrows_mid_vessel_cross_section() {
        // Fluid cells per z-slab: the mid slab must hold markedly fewer
        // cells than the end slabs, in roughly the (1-severity)^2 area
        // ratio.
        let spec = StenosisSpec::default().with_resolution(16);
        let g = spec.build();
        let (nx, ny, nz) = g.dims();
        let slab = |z: usize| {
            let mut n = 0usize;
            for y in 0..ny {
                for x in 0..nx {
                    if g.get(x, y, z).is_fluid() {
                        n += 1;
                    }
                }
            }
            n
        };
        let mid = slab(nz / 2);
        let end = slab(nz / 5);
        assert!(mid > 0, "throat pinched shut");
        let ratio = mid as f64 / end as f64;
        let expect = (1.0 - spec.severity).powi(2);
        assert!(
            (ratio - expect).abs() < 0.2,
            "mid/end area ratio {ratio:.3} vs expected {expect:.3}"
        );
    }

    #[test]
    fn severity_zero_matches_plain_cylinder_census() {
        let sten = StenosisSpec::default().with_severity(0.0).with_resolution(10).build();
        let cyl = crate::anatomy::CylinderSpec::default().with_resolution(10).build();
        assert_eq!(sten.fluid_count(), cyl.fluid_count());
    }

    #[test]
    fn higher_severity_raises_wall_share() {
        let mild = GeometryStats::measure(
            &StenosisSpec::default().with_severity(0.2).with_resolution(12).build(),
        );
        let severe = GeometryStats::measure(
            &StenosisSpec::default().with_severity(0.7).with_resolution(12).build(),
        );
        assert!(
            severe.wall_fraction() > mild.wall_fraction(),
            "severe {} vs mild {}",
            severe.wall_fraction(),
            mild.wall_fraction()
        );
    }

    #[test]
    fn caps_are_at_opposite_ends() {
        let g = StenosisSpec::default().with_resolution(10).build();
        let (_, _, nz) = g.dims();
        let mean_z = |ct: CellType| {
            let (mut sum, mut n) = (0usize, 0usize);
            for (_, _, z, c) in g.iter_cells() {
                if c == ct {
                    sum += z;
                    n += 1;
                }
            }
            sum as f64 / n as f64
        };
        assert!(mean_z(CellType::Inlet) < nz as f64 * 0.3);
        assert!(mean_z(CellType::Outlet) > nz as f64 * 0.7);
    }

    #[test]
    #[should_panic(expected = "severity")]
    fn occlusive_severity_rejected() {
        let _ = StenosisSpec::default().with_severity(0.95);
    }
}

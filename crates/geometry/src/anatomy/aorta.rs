//! Synthetic aorta (paper Fig. 2B).
//!
//! Ascending aorta, arch with the three great vessels (brachiocephalic,
//! left common carotid, left subclavian), and descending aorta, built from
//! swept tapered tubes. Dimensions follow typical adult anatomy. The
//! resulting voxel census sits between the cylinder (dense, bulk-heavy) and
//! the cerebral tree (sparse, wall-heavy): the paper's "typical
//! communication and load balancing" case.

use crate::shapes::Vec3;
use crate::tube::{Tube, VesselNetwork};
use crate::voxel::VoxelGrid;

/// Parameters of the synthetic aorta. All lengths in millimetres.
#[derive(Debug, Clone, Copy)]
pub struct AortaSpec {
    /// Radius at the aortic root.
    pub root_radius_mm: f64,
    /// Radius at the end of the descending segment.
    pub descending_radius_mm: f64,
    /// Height of the ascending segment.
    pub ascending_height_mm: f64,
    /// Radius of the arch centerline curve.
    pub arch_radius_mm: f64,
    /// Length of the descending segment.
    pub descending_length_mm: f64,
    /// Length of the three arch branches.
    pub branch_length_mm: f64,
    /// Voxels across the root diameter.
    pub resolution: usize,
}

impl Default for AortaSpec {
    fn default() -> Self {
        Self {
            root_radius_mm: 14.0,
            descending_radius_mm: 10.0,
            ascending_height_mm: 50.0,
            arch_radius_mm: 28.0,
            descending_length_mm: 90.0,
            branch_length_mm: 35.0,
            resolution: 28,
        }
    }
}

impl AortaSpec {
    /// Set the number of voxels across the root diameter.
    pub fn with_resolution(mut self, resolution: usize) -> Self {
        assert!(resolution >= 6, "resolution below 6 voxels is degenerate");
        self.resolution = resolution;
        self
    }

    /// Voxel spacing implied by the resolution.
    pub fn dx_mm(&self) -> f64 {
        2.0 * self.root_radius_mm / self.resolution as f64
    }

    /// Build the vessel network: ascending + arch + descending trunk, three
    /// arch branches, one inlet (root), four outlets (three branches + the
    /// descending end).
    pub fn network(&self) -> VesselNetwork {
        let mut net = VesselNetwork::new();

        let root = Vec3::new(0.0, 0.0, 0.0);
        let arch_start = Vec3::new(0.0, 0.0, self.ascending_height_mm);
        // Arch: semicircle in the x-z plane from the top of the ascending
        // segment over to the start of the descending segment.
        let arch_center = Vec3::new(self.arch_radius_mm, 0.0, self.ascending_height_mm);
        let n_arc = 12usize;
        let mut trunk_points = vec![root, arch_start];
        let mut trunk_radii = vec![self.root_radius_mm, self.root_radius_mm];
        let arch_end_radius =
            0.5 * (self.root_radius_mm + self.descending_radius_mm);
        let mut branch_anchors = Vec::new();
        for i in 1..=n_arc {
            let theta = std::f64::consts::PI * (1.0 - i as f64 / n_arc as f64);
            let p = Vec3::new(
                arch_center.x + self.arch_radius_mm * theta.cos(),
                0.0,
                arch_center.z + self.arch_radius_mm * theta.sin(),
            );
            let t = i as f64 / n_arc as f64;
            let r = self.root_radius_mm + t * (arch_end_radius - self.root_radius_mm);
            trunk_points.push(p);
            trunk_radii.push(r);
            // Anchor the three great vessels near the apex of the arch.
            if i == n_arc / 4 || i == n_arc / 2 || i == 3 * n_arc / 4 {
                branch_anchors.push((p, r));
            }
        }
        let arch_end = *trunk_points.last().expect("non-empty");
        let descending_end = Vec3::new(arch_end.x, 0.0, arch_end.z - self.descending_length_mm);
        trunk_points.push(descending_end);
        trunk_radii.push(self.descending_radius_mm);
        net.add_tube(Tube::new(trunk_points, trunk_radii));

        // Great vessels: rise vertically from the arch with typical radii
        // (brachiocephalic largest).
        let branch_radii = [6.5, 4.5, 5.5];
        for ((anchor, _), &br) in branch_anchors.iter().zip(&branch_radii) {
            let top = Vec3::new(anchor.x, 0.0, anchor.z + self.branch_length_mm);
            net.add_tube(Tube::straight(*anchor, top, br, br * 0.85));
            net.add_outlet(top, br * 1.3);
        }

        net.add_inlet(root, self.root_radius_mm * 1.2);
        net.add_outlet(descending_end, self.descending_radius_mm * 1.3);
        net
    }

    /// Voxelize at the spec's resolution.
    pub fn build(&self) -> VoxelGrid {
        self.network().voxelize(self.dx_mm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GeometryStats;

    #[test]
    fn network_has_trunk_and_three_branches() {
        let net = AortaSpec::default().network();
        assert_eq!(net.tubes().len(), 4);
        assert_eq!(net.inlets().len(), 1);
        assert_eq!(net.outlets().len(), 4);
    }

    #[test]
    fn builds_with_all_cell_types() {
        let g = AortaSpec::default().with_resolution(10).build();
        let s = GeometryStats::measure(&g);
        assert!(s.fluid_points > 0);
        assert!(s.bulk_points > 0);
        assert!(s.wall_points > 0);
        assert!(s.inlet_points > 0);
        assert!(s.outlet_points > 0);
    }

    #[test]
    fn sparser_than_cylinder() {
        // The aorta wanders through its bounding box: its fluid fraction is
        // well below the cylinder's.
        let aorta = GeometryStats::measure(&AortaSpec::default().with_resolution(12).build());
        let cyl = GeometryStats::measure(
            &crate::anatomy::CylinderSpec::default()
                .with_resolution(12)
                .build(),
        );
        assert!(
            aorta.fluid_fraction < cyl.fluid_fraction,
            "aorta {} vs cylinder {}",
            aorta.fluid_fraction,
            cyl.fluid_fraction
        );
    }

    #[test]
    fn taper_narrows_descending_radius() {
        let net = AortaSpec::default().network();
        let trunk = &net.tubes()[0];
        assert!(trunk.end_radius() < trunk.radii()[0]);
    }

    #[test]
    fn resolution_controls_size() {
        let lo = AortaSpec::default().with_resolution(8).build();
        let hi = AortaSpec::default().with_resolution(14).build();
        assert!(hi.fluid_count() > lo.fluid_count() * 2);
    }
}

//! Parametric synthetic anatomies reproducing the paper's three test
//! geometries (its Fig. 2).
//!
//! The paper's aorta and cerebral models come from the Open Source Medical
//! Software / Vascular Model Repository, which is not available in this
//! environment. These generators are tuned so their voxel censuses land in
//! the same regimes the paper exploits:
//!
//! | Geometry | Communication | Load balance | Wall points |
//! |---|---|---|---|
//! | [`CylinderSpec`] | high (dense cross-sections) | easy | few |
//! | [`AortaSpec`] | typical | typical | moderate |
//! | [`CerebralSpec`] | low (thin spread-out vessels) | typical | many |
//! | [`StenosisSpec`] | high away from the throat | skewed by the lesion | throat-concentrated |
//! | [`AneurysmSpec`] | low in the sac | dome-skewed | dome-heavy |
//!
//! Each spec has anatomically plausible default dimensions (mm) and a
//! `resolution` knob — the number of voxels across the inlet diameter —
//! that controls problem size without changing shape.

mod aneurysm;
mod aorta;
mod cerebral;
mod cylinder;
mod stenosis;

pub use aneurysm::AneurysmSpec;
pub use aorta::AortaSpec;
pub use cerebral::CerebralSpec;
pub use cylinder::CylinderSpec;
pub use stenosis::StenosisSpec;

/// A tiny deterministic linear congruential generator used for the
/// pseudo-random (but reproducible) branching angles of the cerebral tree.
/// Numerical Recipes constants; not suitable for statistics, perfect for
/// repeatable geometry.
#[derive(Debug, Clone)]
pub(crate) struct Lcg {
    state: u64,
}

impl Lcg {
    pub(crate) fn new(seed: u64) -> Self {
        Self {
            state: seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407),
        }
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self
            .state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.state
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub(crate) fn range(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lcg_is_deterministic() {
        let mut a = Lcg::new(7);
        let mut b = Lcg::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn lcg_f64_in_unit_interval() {
        let mut g = Lcg::new(3);
        for _ in 0..1000 {
            let v = g.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn lcg_seeds_differ() {
        let mut a = Lcg::new(1);
        let mut b = Lcg::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}

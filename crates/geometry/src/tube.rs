//! Centerline-swept tubes: polylines with per-point radii.
//!
//! Vessels are described as a centerline (sequence of 3-D points) with a
//! radius at each point; consecutive points become [`TaperedCapsule`]
//! segments. A [`Tube`] is the union of its segments, and a vascular
//! network is a union of tubes. Voxelization samples the union SDF at every
//! voxel centre.

use crate::shapes::{Sdf, TaperedCapsule, Vec3};
use crate::voxel::{CellType, VoxelGrid};

/// A polyline centerline with a radius per vertex.
#[derive(Debug, Clone)]
pub struct Tube {
    points: Vec<Vec3>,
    radii: Vec<f64>,
}

impl Tube {
    /// Build from matching point and radius lists.
    ///
    /// # Panics
    /// Panics if the lists differ in length or are shorter than 2.
    pub fn new(points: Vec<Vec3>, radii: Vec<f64>) -> Self {
        assert_eq!(points.len(), radii.len(), "point/radius length mismatch");
        assert!(points.len() >= 2, "a tube needs at least two points");
        assert!(radii.iter().all(|&r| r > 0.0), "non-positive radius");
        Self { points, radii }
    }

    /// A straight tube between two points with a linear taper.
    pub fn straight(a: Vec3, b: Vec3, radius_a: f64, radius_b: f64) -> Self {
        Self::new(vec![a, b], vec![radius_a, radius_b])
    }

    /// Centerline vertices.
    pub fn points(&self) -> &[Vec3] {
        &self.points
    }

    /// Per-vertex radii.
    pub fn radii(&self) -> &[f64] {
        &self.radii
    }

    /// First centerline vertex.
    pub fn start(&self) -> Vec3 {
        self.points[0]
    }

    /// Last centerline vertex.
    pub fn end(&self) -> Vec3 {
        *self.points.last().expect("non-empty")
    }

    /// Radius at the last vertex.
    pub fn end_radius(&self) -> f64 {
        *self.radii.last().expect("non-empty")
    }

    /// Total centerline length.
    pub fn length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[1].sub(w[0]).norm())
            .sum()
    }

    /// The tapered-capsule segments making up this tube.
    pub fn segments(&self) -> impl Iterator<Item = TaperedCapsule> + '_ {
        (0..self.points.len() - 1).map(move |i| TaperedCapsule {
            a: self.points[i],
            b: self.points[i + 1],
            radius_a: self.radii[i],
            radius_b: self.radii[i + 1],
        })
    }
}

impl Sdf for Tube {
    fn distance(&self, p: Vec3) -> f64 {
        self.segments()
            .map(|s| s.distance(p))
            .fold(f64::INFINITY, f64::min)
    }
}

/// A collection of tubes forming a vascular network, with designated
/// inlet/outlet cap positions used during classification.
#[derive(Debug, Clone, Default)]
pub struct VesselNetwork {
    tubes: Vec<Tube>,
    /// Sphere-shaped cap regions (`centre`, `radius`) marked as inlets.
    inlets: Vec<(Vec3, f64)>,
    /// Sphere-shaped cap regions marked as outlets.
    outlets: Vec<(Vec3, f64)>,
}

impl VesselNetwork {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a vessel.
    pub fn add_tube(&mut self, tube: Tube) {
        self.tubes.push(tube);
    }

    /// Mark an inlet cap: fluid voxels within `radius` of `center` become
    /// [`CellType::Inlet`] during voxelization.
    pub fn add_inlet(&mut self, center: Vec3, radius: f64) {
        self.inlets.push((center, radius));
    }

    /// Mark an outlet cap.
    pub fn add_outlet(&mut self, center: Vec3, radius: f64) {
        self.outlets.push((center, radius));
    }

    /// The vessels.
    pub fn tubes(&self) -> &[Tube] {
        &self.tubes
    }

    /// Inlet caps.
    pub fn inlets(&self) -> &[(Vec3, f64)] {
        &self.inlets
    }

    /// Outlet caps.
    pub fn outlets(&self) -> &[(Vec3, f64)] {
        &self.outlets
    }

    /// Axis-aligned bounding box of all tube surfaces `(min, max)`.
    ///
    /// Returns `None` for an empty network.
    pub fn bounding_box(&self) -> Option<(Vec3, Vec3)> {
        let mut min = Vec3::new(f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut max = Vec3::new(f64::NEG_INFINITY, f64::NEG_INFINITY, f64::NEG_INFINITY);
        let mut any = false;
        for tube in &self.tubes {
            for (p, &r) in tube.points().iter().zip(tube.radii()) {
                any = true;
                min = Vec3::new(min.x.min(p.x - r), min.y.min(p.y - r), min.z.min(p.z - r));
                max = Vec3::new(max.x.max(p.x + r), max.y.max(p.y + r), max.z.max(p.z + r));
            }
        }
        any.then_some((min, max))
    }

    /// Voxelize the network onto a grid with spacing `dx_mm`, padding the
    /// bounding box by one voxel of solid on every side, then classify
    /// wall/inlet/outlet cells.
    ///
    /// # Panics
    /// Panics on an empty network.
    pub fn voxelize(&self, dx_mm: f64) -> VoxelGrid {
        let (min, max) = self.bounding_box().expect("voxelizing empty network");
        let pad = dx_mm;
        let origin = Vec3::new(min.x - pad, min.y - pad, min.z - pad);
        let size = max.sub(origin);
        let nx = ((size.x + pad) / dx_mm).ceil() as usize + 1;
        let ny = ((size.y + pad) / dx_mm).ceil() as usize + 1;
        let nz = ((size.z + pad) / dx_mm).ceil() as usize + 1;
        let mut grid = VoxelGrid::solid(nx.max(3), ny.max(3), nz.max(3), dx_mm);

        // Mark lumen voxels (SDF < 0 at the voxel centre) as bulk fluid.
        // Rasterize per tapered-capsule segment over its own bounding box
        // rather than evaluating the whole-network SDF at every grid voxel:
        // vascular trees are sparse in their bounding boxes (often ~1%
        // fluid), so this is orders of magnitude faster and exact — a voxel
        // is inside the union iff it is inside some segment.
        let clamp_axis = |v: f64, n: usize| -> usize {
            v.max(0.0).min((n.saturating_sub(1)) as f64) as usize
        };
        for tube in &self.tubes {
            for seg in tube.segments() {
                let r = seg.radius_a.max(seg.radius_b) + dx_mm;
                let lo = Vec3::new(
                    seg.a.x.min(seg.b.x) - r,
                    seg.a.y.min(seg.b.y) - r,
                    seg.a.z.min(seg.b.z) - r,
                );
                let hi = Vec3::new(
                    seg.a.x.max(seg.b.x) + r,
                    seg.a.y.max(seg.b.y) + r,
                    seg.a.z.max(seg.b.z) + r,
                );
                let x0 = clamp_axis((lo.x - origin.x) / dx_mm - 0.5, grid.nx());
                let y0 = clamp_axis((lo.y - origin.y) / dx_mm - 0.5, grid.ny());
                let z0 = clamp_axis((lo.z - origin.z) / dx_mm - 0.5, grid.nz());
                let x1 = clamp_axis((hi.x - origin.x) / dx_mm + 0.5, grid.nx());
                let y1 = clamp_axis((hi.y - origin.y) / dx_mm + 0.5, grid.ny());
                let z1 = clamp_axis((hi.z - origin.z) / dx_mm + 0.5, grid.nz());
                for z in z0..=z1 {
                    for y in y0..=y1 {
                        for x in x0..=x1 {
                            if grid.get(x, y, z) == CellType::Bulk {
                                continue;
                            }
                            let p = Vec3::new(
                                origin.x + (x as f64 + 0.5) * dx_mm,
                                origin.y + (y as f64 + 0.5) * dx_mm,
                                origin.z + (z as f64 + 0.5) * dx_mm,
                            );
                            if seg.distance(p) < 0.0 {
                                grid.set(x, y, z, CellType::Bulk);
                            }
                        }
                    }
                }
            }
        }

        // Mark inlet/outlet caps before wall classification so a cap cell
        // keeps its boundary role even when it also touches solid.
        let mark = |grid: &mut VoxelGrid, caps: &[(Vec3, f64)], t: CellType| {
            for z in 0..grid.nz() {
                for y in 0..grid.ny() {
                    for x in 0..grid.nx() {
                        if grid.get(x, y, z) != CellType::Bulk {
                            continue;
                        }
                        let p = Vec3::new(
                            origin.x + (x as f64 + 0.5) * dx_mm,
                            origin.y + (y as f64 + 0.5) * dx_mm,
                            origin.z + (z as f64 + 0.5) * dx_mm,
                        );
                        if caps.iter().any(|&(c, r)| p.sub(c).norm() <= r) {
                            grid.set(x, y, z, t);
                        }
                    }
                }
            }
        };
        mark(&mut grid, &self.inlets, CellType::Inlet);
        mark(&mut grid, &self.outlets, CellType::Outlet);

        crate::classify::classify_walls(&mut grid);
        grid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tube_length_sums_segments() {
        let t = Tube::new(
            vec![
                Vec3::new(0.0, 0.0, 0.0),
                Vec3::new(3.0, 0.0, 0.0),
                Vec3::new(3.0, 4.0, 0.0),
            ],
            vec![1.0, 1.0, 1.0],
        );
        assert!((t.length() - 7.0).abs() < 1e-12);
        assert_eq!(t.segments().count(), 2);
    }

    #[test]
    fn tube_sdf_inside_and_outside() {
        let t = Tube::straight(Vec3::new(0.0, 0.0, 0.0), Vec3::new(10.0, 0.0, 0.0), 1.0, 1.0);
        assert!(t.distance(Vec3::new(5.0, 0.0, 0.0)) < 0.0);
        assert!(t.distance(Vec3::new(5.0, 3.0, 0.0)) > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn tube_needs_two_points() {
        let _ = Tube::new(vec![Vec3::new(0.0, 0.0, 0.0)], vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "non-positive radius")]
    fn tube_rejects_zero_radius() {
        let _ = Tube::new(
            vec![Vec3::new(0.0, 0.0, 0.0), Vec3::new(1.0, 0.0, 0.0)],
            vec![1.0, 0.0],
        );
    }

    #[test]
    fn bounding_box_covers_radii() {
        let mut net = VesselNetwork::new();
        net.add_tube(Tube::straight(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(10.0, 0.0, 0.0),
            2.0,
            1.0,
        ));
        let (min, max) = net.bounding_box().unwrap();
        assert_eq!(min.x, -2.0);
        assert_eq!(max.x, 11.0);
        assert_eq!(min.y, -2.0);
        assert_eq!(max.y, 2.0);
    }

    #[test]
    fn voxelize_straight_tube_has_fluid_core_and_walls() {
        let mut net = VesselNetwork::new();
        net.add_tube(Tube::straight(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(20.0, 0.0, 0.0),
            3.0,
            3.0,
        ));
        let grid = net.voxelize(1.0);
        assert!(grid.fluid_count() > 0);
        assert!(grid.count(CellType::Wall) > 0);
        assert!(grid.count(CellType::Bulk) > 0);
        // The grid is padded, so its outer shell is solid.
        let (nx, ny, nz) = grid.dims();
        assert!(grid.get(0, 0, 0) == CellType::Solid);
        assert!(grid.get(nx - 1, ny - 1, nz - 1) == CellType::Solid);
    }

    #[test]
    fn voxelize_marks_caps() {
        let mut net = VesselNetwork::new();
        net.add_tube(Tube::straight(
            Vec3::new(0.0, 0.0, 0.0),
            Vec3::new(20.0, 0.0, 0.0),
            3.0,
            3.0,
        ));
        net.add_inlet(Vec3::new(0.0, 0.0, 0.0), 3.5);
        net.add_outlet(Vec3::new(20.0, 0.0, 0.0), 3.5);
        let grid = net.voxelize(1.0);
        assert!(grid.count(CellType::Inlet) > 0);
        assert!(grid.count(CellType::Outlet) > 0);
    }

    #[test]
    #[should_panic(expected = "empty network")]
    fn voxelize_empty_panics() {
        VesselNetwork::new().voxelize(1.0);
    }
}

//! Geometry census statistics.
//!
//! The performance model sees a geometry only through a handful of numbers:
//! how many fluid points there are, how they split into bulk/wall/boundary
//! types (different byte costs, paper Eq. 9), and how "spread out" the
//! domain is (communication surface). This module computes that census.

use crate::voxel::{CellType, VoxelGrid};

/// Summary statistics of a voxelized geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GeometryStats {
    /// Total voxels in the bounding grid.
    pub total_voxels: usize,
    /// All fluid voxels (bulk + wall + inlet + outlet).
    pub fluid_points: usize,
    /// Interior fluid voxels.
    pub bulk_points: usize,
    /// Fluid voxels adjacent to solid.
    pub wall_points: usize,
    /// Inlet-cap voxels.
    pub inlet_points: usize,
    /// Outlet-cap voxels.
    pub outlet_points: usize,
    /// Fraction of the bounding grid that is fluid — the paper's notion of
    /// how "efficiently packed" a geometry is (the cylinder packs well and
    /// therefore communicates heavily when split).
    pub fluid_fraction: f64,
    /// Ratio of bulk to wall fluid points. High for the cylinder, low for
    /// the cerebral tree.
    pub bulk_wall_ratio: f64,
}

impl GeometryStats {
    /// Compute the census of a grid.
    pub fn measure(grid: &VoxelGrid) -> Self {
        let mut bulk = 0usize;
        let mut wall = 0usize;
        let mut inlet = 0usize;
        let mut outlet = 0usize;
        for &c in grid.cells() {
            match c {
                CellType::Bulk => bulk += 1,
                CellType::Wall => wall += 1,
                CellType::Inlet => inlet += 1,
                CellType::Outlet => outlet += 1,
                CellType::Solid => {}
            }
        }
        let fluid = bulk + wall + inlet + outlet;
        Self {
            total_voxels: grid.len(),
            fluid_points: fluid,
            bulk_points: bulk,
            wall_points: wall,
            inlet_points: inlet,
            outlet_points: outlet,
            fluid_fraction: fluid as f64 / grid.len() as f64,
            bulk_wall_ratio: if wall == 0 {
                f64::INFINITY
            } else {
                bulk as f64 / wall as f64
            },
        }
    }

    /// Fraction of fluid points that are walls (have bounce-back links).
    pub fn wall_fraction(&self) -> f64 {
        if self.fluid_points == 0 {
            0.0
        } else {
            self.wall_points as f64 / self.fluid_points as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::classify_walls;

    #[test]
    fn census_adds_up() {
        let mut g = VoxelGrid::filled(4, 4, 4, 1.0, CellType::Bulk);
        g.set(0, 0, 0, CellType::Solid);
        g.set(1, 0, 0, CellType::Inlet);
        g.set(2, 0, 0, CellType::Outlet);
        classify_walls(&mut g);
        let s = GeometryStats::measure(&g);
        assert_eq!(s.total_voxels, 64);
        assert_eq!(
            s.fluid_points,
            s.bulk_points + s.wall_points + s.inlet_points + s.outlet_points
        );
        assert_eq!(s.fluid_points, 63);
        assert_eq!(s.inlet_points, 1);
        assert_eq!(s.outlet_points, 1);
        assert!((s.fluid_fraction - 63.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn all_solid_grid() {
        let g = VoxelGrid::solid(3, 3, 3, 1.0);
        let s = GeometryStats::measure(&g);
        assert_eq!(s.fluid_points, 0);
        assert_eq!(s.fluid_fraction, 0.0);
        assert_eq!(s.wall_fraction(), 0.0);
        assert!(s.bulk_wall_ratio.is_infinite());
    }

    #[test]
    fn wall_fraction_of_thin_slab() {
        // A 1-voxel-thick fluid slab is all wall.
        let mut g = VoxelGrid::solid(5, 5, 3, 1.0);
        for y in 0..5 {
            for x in 0..5 {
                g.set(x, y, 1, CellType::Bulk);
            }
        }
        classify_walls(&mut g);
        let s = GeometryStats::measure(&g);
        assert_eq!(s.wall_points, 25);
        assert_eq!(s.bulk_points, 0);
        assert_eq!(s.wall_fraction(), 1.0);
    }
}

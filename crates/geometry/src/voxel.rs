//! Dense voxel grids of typed cells.
//!
//! The solver and the performance model both see geometry only through this
//! representation: a box of `nx × ny × nz` voxels, each one of the
//! [`CellType`] variants. Linear indexing is x-fastest (`x + nx*(y + ny*z)`),
//! matching the memory layout the LBM kernels stream through.

/// Classification of a single lattice site.
///
/// The distinction between [`CellType::Bulk`] and [`CellType::Wall`] fluid
/// matters for performance modeling: wall fluid points touch solid
/// neighbors, so their update reads fewer distributions (paper §III-D notes
/// that "updates for wall fluid points require fewer memory accesses").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum CellType {
    /// Outside the vessel lumen; never updated.
    Solid = 0,
    /// Interior fluid with a full fluid neighborhood.
    Bulk = 1,
    /// Fluid adjacent to at least one solid (or out-of-grid) site;
    /// bounce-back applies on the missing directions.
    Wall = 2,
    /// Fluid on an inflow cap; a Poiseuille velocity profile is imposed.
    Inlet = 3,
    /// Fluid on an outflow cap; a zero-pressure condition is imposed.
    Outlet = 4,
}

impl CellType {
    /// Whether a lattice update is performed at this site.
    #[inline]
    pub fn is_fluid(self) -> bool {
        !matches!(self, CellType::Solid)
    }
}

/// A dense, axis-aligned grid of typed voxels with a physical spacing.
#[derive(Debug, Clone, PartialEq)]
pub struct VoxelGrid {
    nx: usize,
    ny: usize,
    nz: usize,
    /// Physical lattice spacing in millimetres (uniform in all axes).
    dx_mm: f64,
    cells: Vec<CellType>,
}

impl VoxelGrid {
    /// Create a grid with every cell set to `fill`.
    ///
    /// # Panics
    /// Panics if any dimension is zero.
    pub fn filled(nx: usize, ny: usize, nz: usize, dx_mm: f64, fill: CellType) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "zero-sized grid");
        assert!(dx_mm > 0.0, "non-positive spacing");
        Self {
            nx,
            ny,
            nz,
            dx_mm,
            cells: vec![fill; nx * ny * nz],
        }
    }

    /// Create an all-solid grid (the usual starting point for voxelization).
    pub fn solid(nx: usize, ny: usize, nz: usize, dx_mm: f64) -> Self {
        Self::filled(nx, ny, nz, dx_mm, CellType::Solid)
    }

    /// Grid dimensions `(nx, ny, nz)`.
    #[inline]
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Number of voxels along x.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of voxels along y.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Number of voxels along z.
    #[inline]
    pub fn nz(&self) -> usize {
        self.nz
    }

    /// Physical lattice spacing in millimetres.
    #[inline]
    pub fn dx_mm(&self) -> f64 {
        self.dx_mm
    }

    /// Total voxel count.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid contains no voxels (never true for a constructed
    /// grid; kept for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Linear index of `(x, y, z)`; x varies fastest.
    #[inline]
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        x + self.nx * (y + self.ny * z)
    }

    /// Inverse of [`Self::index`].
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        let x = idx % self.nx;
        let y = (idx / self.nx) % self.ny;
        let z = idx / (self.nx * self.ny);
        (x, y, z)
    }

    /// Cell type at `(x, y, z)`.
    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> CellType {
        self.cells[self.index(x, y, z)]
    }

    /// Cell type by linear index.
    #[inline]
    pub fn get_linear(&self, idx: usize) -> CellType {
        self.cells[idx]
    }

    /// Set the cell type at `(x, y, z)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, t: CellType) {
        let i = self.index(x, y, z);
        self.cells[i] = t;
    }

    /// Set the cell type by linear index.
    #[inline]
    pub fn set_linear(&mut self, idx: usize, t: CellType) {
        self.cells[idx] = t;
    }

    /// Cell type at a signed offset from `(x, y, z)`, or `Solid` when the
    /// offset leaves the grid. Treating out-of-grid as solid gives walls a
    /// uniform bounce-back treatment at the domain boundary.
    #[inline]
    pub fn get_offset(&self, x: usize, y: usize, z: usize, dx: i32, dy: i32, dz: i32) -> CellType {
        let nx = x as i64 + dx as i64;
        let ny = y as i64 + dy as i64;
        let nz = z as i64 + dz as i64;
        if nx < 0
            || ny < 0
            || nz < 0
            || nx >= self.nx as i64
            || ny >= self.ny as i64
            || nz >= self.nz as i64
        {
            return CellType::Solid;
        }
        self.get(nx as usize, ny as usize, nz as usize)
    }

    /// Iterator over `(x, y, z, cell)` for every voxel, in memory order.
    pub fn iter_cells(&self) -> impl Iterator<Item = (usize, usize, usize, CellType)> + '_ {
        self.cells.iter().enumerate().map(|(i, &c)| {
            let (x, y, z) = self.coords(i);
            (x, y, z, c)
        })
    }

    /// Linear indices of all fluid (non-solid) voxels, in memory order.
    pub fn fluid_indices(&self) -> Vec<usize> {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_fluid())
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of fluid (non-solid) voxels.
    pub fn fluid_count(&self) -> usize {
        self.cells.iter().filter(|c| c.is_fluid()).count()
    }

    /// Count of voxels of a specific type.
    pub fn count(&self, t: CellType) -> usize {
        self.cells.iter().filter(|&&c| c == t).count()
    }

    /// Raw cell slice (read-only), for bulk scans.
    #[inline]
    pub fn cells(&self) -> &[CellType] {
        &self.cells
    }

    /// Number of fluid voxels inside an axis-aligned box
    /// `[x0, x1) × [y0, y1) × [z0, z1)` clamped to the grid.
    pub fn fluid_in_box(
        &self,
        (x0, x1): (usize, usize),
        (y0, y1): (usize, usize),
        (z0, z1): (usize, usize),
    ) -> usize {
        let x1 = x1.min(self.nx);
        let y1 = y1.min(self.ny);
        let z1 = z1.min(self.nz);
        let mut n = 0;
        for z in z0..z1 {
            for y in y0..y1 {
                let row = self.index(x0.min(x1), y, z);
                for c in &self.cells[row..row + x1.saturating_sub(x0)] {
                    if c.is_fluid() {
                        n += 1;
                    }
                }
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let g = VoxelGrid::solid(4, 5, 6, 0.1);
        for z in 0..6 {
            for y in 0..5 {
                for x in 0..4 {
                    let i = g.index(x, y, z);
                    assert_eq!(g.coords(i), (x, y, z));
                }
            }
        }
    }

    #[test]
    fn x_is_fastest_axis() {
        let g = VoxelGrid::solid(4, 5, 6, 0.1);
        assert_eq!(g.index(1, 0, 0), g.index(0, 0, 0) + 1);
        assert_eq!(g.index(0, 1, 0), g.index(0, 0, 0) + 4);
        assert_eq!(g.index(0, 0, 1), g.index(0, 0, 0) + 20);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut g = VoxelGrid::solid(3, 3, 3, 0.1);
        g.set(1, 2, 0, CellType::Bulk);
        assert_eq!(g.get(1, 2, 0), CellType::Bulk);
        assert_eq!(g.get(0, 0, 0), CellType::Solid);
    }

    #[test]
    fn out_of_grid_reads_as_solid() {
        let mut g = VoxelGrid::filled(2, 2, 2, 0.1, CellType::Bulk);
        g.set(0, 0, 0, CellType::Bulk);
        assert_eq!(g.get_offset(0, 0, 0, -1, 0, 0), CellType::Solid);
        assert_eq!(g.get_offset(1, 1, 1, 1, 1, 1), CellType::Solid);
        assert_eq!(g.get_offset(0, 0, 0, 1, 0, 0), CellType::Bulk);
    }

    #[test]
    fn fluid_census() {
        let mut g = VoxelGrid::solid(2, 2, 1, 0.1);
        g.set(0, 0, 0, CellType::Bulk);
        g.set(1, 0, 0, CellType::Wall);
        g.set(0, 1, 0, CellType::Inlet);
        assert_eq!(g.fluid_count(), 3);
        assert_eq!(g.count(CellType::Solid), 1);
        assert_eq!(g.fluid_indices(), vec![0, 1, 2]);
    }

    #[test]
    fn fluid_in_box_clamps() {
        let g = VoxelGrid::filled(4, 4, 4, 0.1, CellType::Bulk);
        assert_eq!(g.fluid_in_box((0, 100), (0, 100), (0, 100)), 64);
        assert_eq!(g.fluid_in_box((0, 2), (0, 2), (0, 2)), 8);
        assert_eq!(g.fluid_in_box((3, 3), (0, 4), (0, 4)), 0);
    }

    #[test]
    fn cell_type_fluid_predicate() {
        assert!(!CellType::Solid.is_fluid());
        for t in [
            CellType::Bulk,
            CellType::Wall,
            CellType::Inlet,
            CellType::Outlet,
        ] {
            assert!(t.is_fluid());
        }
    }

    #[test]
    #[should_panic(expected = "zero-sized grid")]
    fn zero_dim_panics() {
        let _ = VoxelGrid::solid(0, 2, 2, 0.1);
    }
}

//! Property tests for the SDF machinery (`hemocloud_rt::check`): metric
//! properties that must hold for arbitrary shapes and query points.
//! Historic failing seeds are committed as explicit `regression_*` tests.

use hemocloud_geometry::shapes::{Sdf, Sphere, TaperedCapsule, Union, Vec3};
use hemocloud_geometry::tube::{Tube, VesselNetwork};
use hemocloud_geometry::voxel::CellType;
use hemocloud_rt::check::{self, Config};
use hemocloud_rt::rng::Rng;

fn vec3(rng: &mut Rng) -> Vec3 {
    Vec3::new(
        rng.range_f64(-20.0, 20.0),
        rng.range_f64(-20.0, 20.0),
        rng.range_f64(-20.0, 20.0),
    )
}

fn capsule(rng: &mut Rng) -> TaperedCapsule {
    TaperedCapsule {
        a: vec3(rng),
        b: vec3(rng),
        radius_a: rng.range_f64(0.5, 4.0),
        radius_b: rng.range_f64(0.5, 4.0),
    }
}

#[test]
fn sphere_sdf_is_one_lipschitz() {
    check::run("sphere_sdf_is_one_lipschitz", Config::cases(64), |rng| {
        // |d(p) - d(q)| <= |p - q| for any true distance field.
        let p = vec3(rng);
        let q = vec3(rng);
        let r = rng.range_f64(0.5, 5.0);
        let s = Sphere {
            center: Vec3::new(1.0, -2.0, 3.0),
            radius: r,
        };
        let lhs = (s.distance(p) - s.distance(q)).abs();
        let rhs = p.sub(q).norm();
        assert!(lhs <= rhs + 1e-9, "lipschitz violated: {lhs} > {rhs}");
    });
}

#[test]
fn capsule_sdf_is_nearly_one_lipschitz() {
    check::run(
        "capsule_sdf_is_nearly_one_lipschitz",
        Config::cases(64),
        |rng| {
            // The tapered capsule interpolates the radius at the closest
            // parameter, which keeps it Lipschitz with a constant only
            // slightly above 1 for bounded tapers.
            let c = capsule(rng);
            let p = vec3(rng);
            let q = vec3(rng);
            let lhs = (c.distance(p) - c.distance(q)).abs();
            let rhs = p.sub(q).norm();
            assert!(lhs <= 1.5 * rhs + 1e-9);
        },
    );
}

#[test]
fn capsule_contains_both_end_spheres() {
    check::run("capsule_contains_both_end_spheres", Config::cases(64), |rng| {
        // Points strictly inside either end sphere are inside the capsule.
        let c = capsule(rng);
        for (center, radius) in [(c.a, c.radius_a), (c.b, c.radius_b)] {
            let inside = center.add(Vec3::new(0.4 * radius, 0.0, 0.0));
            assert!(c.distance(inside) < 0.0);
        }
    });
}

#[test]
fn capsule_is_symmetric_in_endpoint_order() {
    check::run(
        "capsule_is_symmetric_in_endpoint_order",
        Config::cases(64),
        |rng| {
            let c = capsule(rng);
            let p = vec3(rng);
            let flipped = TaperedCapsule {
                a: c.b,
                b: c.a,
                radius_a: c.radius_b,
                radius_b: c.radius_a,
            };
            assert!((c.distance(p) - flipped.distance(p)).abs() < 1e-9);
        },
    );
}

#[test]
fn union_distance_is_min_of_members() {
    check::run("union_distance_is_min_of_members", Config::cases(64), |rng| {
        let n = rng.range_usize(1, 5);
        let cs: Vec<TaperedCapsule> = (0..n).map(|_| capsule(rng)).collect();
        let p = vec3(rng);
        let member_min = cs
            .iter()
            .map(|c| c.distance(p))
            .fold(f64::INFINITY, f64::min);
        let u = Union::new(cs);
        assert!((u.distance(p) - member_min).abs() < 1e-12);
    });
}

/// The invariants `voxelized_tube_fluid_cells_are_inside_the_sdf` asserts,
/// factored out so the historic regression case runs the same checks.
fn assert_voxelized_tube_consistent(len: f64, r: f64, dx: f64) {
    // Every voxel marked fluid has a centre with negative distance;
    // rasterization must agree with the analytic SDF.
    let tube = Tube::straight(Vec3::new(0.0, 0.0, 0.0), Vec3::new(len, 0.0, 0.0), r, r);
    let mut net = VesselNetwork::new();
    net.add_tube(tube.clone());
    let grid = net.voxelize(dx);
    let (min, _) = net.bounding_box().unwrap();
    let origin = Vec3::new(min.x - dx, min.y - dx, min.z - dx);
    for (x, y, z, c) in grid.iter_cells() {
        if c == CellType::Bulk || c == CellType::Wall {
            let p = Vec3::new(
                origin.x + (x as f64 + 0.5) * dx,
                origin.y + (y as f64 + 0.5) * dx,
                origin.z + (z as f64 + 0.5) * dx,
            );
            assert!(
                tube.distance(p) < 0.0,
                "fluid cell ({x},{y},{z}) outside lumen: d = {}",
                tube.distance(p)
            );
        }
    }
    // And the lumen volume approximates the capsule volume (cylinder plus
    // the two hemispherical end caps) within rasterization error.
    let lumen = grid.fluid_count() as f64 * dx * dx * dx;
    let analytic = std::f64::consts::PI * r * r * len + 4.0 / 3.0 * std::f64::consts::PI * r * r * r;
    assert!(
        (lumen - analytic).abs() < 0.25 * analytic,
        "volume {lumen} vs analytic {analytic}"
    );
}

#[test]
fn voxelized_tube_fluid_cells_are_inside_the_sdf() {
    check::run(
        "voxelized_tube_fluid_cells_are_inside_the_sdf",
        Config::cases(64),
        |rng| {
            let len = rng.range_f64(6.0, 20.0);
            let r = rng.range_f64(1.5, 3.0);
            let dx = rng.range_f64(0.5, 1.0);
            assert_voxelized_tube_consistent(len, r, dx);
        },
    );
}

/// Historic proptest-shrunk failure (formerly in
/// `proptest_shapes.proptest-regressions`): a short, fat tube whose
/// end-cap voxels once leaked outside the analytic lumen.
#[test]
fn regression_voxelized_short_fat_tube() {
    assert_voxelized_tube_consistent(6.0, 2.6424478005166043, 0.5);
}

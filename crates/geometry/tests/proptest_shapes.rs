//! Property tests for the SDF machinery: metric properties that must hold
//! for arbitrary shapes and query points.

use hemocloud_geometry::shapes::{Sdf, Sphere, TaperedCapsule, Union, Vec3};
use hemocloud_geometry::tube::{Tube, VesselNetwork};
use hemocloud_geometry::voxel::CellType;
use proptest::prelude::*;

fn vec3() -> impl Strategy<Value = Vec3> {
    (-20.0f64..20.0, -20.0f64..20.0, -20.0f64..20.0).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn capsule() -> impl Strategy<Value = TaperedCapsule> {
    (vec3(), vec3(), 0.5f64..4.0, 0.5f64..4.0).prop_map(|(a, b, ra, rb)| TaperedCapsule {
        a,
        b,
        radius_a: ra,
        radius_b: rb,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sphere_sdf_is_one_lipschitz(p in vec3(), q in vec3(), r in 0.5f64..5.0) {
        // |d(p) - d(q)| <= |p - q| for any true distance field.
        let s = Sphere { center: Vec3::new(1.0, -2.0, 3.0), radius: r };
        let lhs = (s.distance(p) - s.distance(q)).abs();
        let rhs = p.sub(q).norm();
        prop_assert!(lhs <= rhs + 1e-9, "lipschitz violated: {lhs} > {rhs}");
    }

    #[test]
    fn capsule_sdf_is_nearly_one_lipschitz(c in capsule(), p in vec3(), q in vec3()) {
        // The tapered capsule interpolates the radius at the closest
        // parameter, which keeps it Lipschitz with a constant only
        // slightly above 1 for bounded tapers.
        let lhs = (c.distance(p) - c.distance(q)).abs();
        let rhs = p.sub(q).norm();
        prop_assert!(lhs <= 1.5 * rhs + 1e-9);
    }

    #[test]
    fn capsule_contains_both_end_spheres(c in capsule()) {
        // Points strictly inside either end sphere are inside the capsule.
        for (center, radius) in [(c.a, c.radius_a), (c.b, c.radius_b)] {
            let inside = center.add(Vec3::new(0.4 * radius, 0.0, 0.0));
            prop_assert!(c.distance(inside) < 0.0);
        }
    }

    #[test]
    fn capsule_is_symmetric_in_endpoint_order(c in capsule(), p in vec3()) {
        let flipped = TaperedCapsule {
            a: c.b,
            b: c.a,
            radius_a: c.radius_b,
            radius_b: c.radius_a,
        };
        prop_assert!((c.distance(p) - flipped.distance(p)).abs() < 1e-9);
    }

    #[test]
    fn union_distance_is_min_of_members(cs in proptest::collection::vec(capsule(), 1..5), p in vec3()) {
        let member_min = cs
            .iter()
            .map(|c| c.distance(p))
            .fold(f64::INFINITY, f64::min);
        let u = Union::new(cs);
        prop_assert!((u.distance(p) - member_min).abs() < 1e-12);
    }

    #[test]
    fn voxelized_tube_fluid_cells_are_inside_the_sdf(
        len in 6.0f64..20.0,
        r in 1.5f64..3.0,
        dx in 0.5f64..1.0,
    ) {
        // Every voxel marked fluid has a centre with negative distance;
        // rasterization must agree with the analytic SDF.
        let tube = Tube::straight(Vec3::new(0.0, 0.0, 0.0), Vec3::new(len, 0.0, 0.0), r, r);
        let mut net = VesselNetwork::new();
        net.add_tube(tube.clone());
        let grid = net.voxelize(dx);
        let (min, _) = net.bounding_box().unwrap();
        let origin = Vec3::new(min.x - dx, min.y - dx, min.z - dx);
        for (x, y, z, c) in grid.iter_cells() {
            if c == CellType::Bulk || c == CellType::Wall {
                let p = Vec3::new(
                    origin.x + (x as f64 + 0.5) * dx,
                    origin.y + (y as f64 + 0.5) * dx,
                    origin.z + (z as f64 + 0.5) * dx,
                );
                prop_assert!(
                    tube.distance(p) < 0.0,
                    "fluid cell ({x},{y},{z}) outside lumen: d = {}",
                    tube.distance(p)
                );
            }
        }
        // And the lumen volume approximates the capsule volume (cylinder
        // plus the two hemispherical end caps) within rasterization error.
        let lumen = grid.fluid_count() as f64 * dx * dx * dx;
        let analytic = std::f64::consts::PI * r * r * len
            + 4.0 / 3.0 * std::f64::consts::PI * r * r * r;
        prop_assert!(
            (lumen - analytic).abs() < 0.25 * analytic,
            "volume {lumen} vs analytic {analytic}"
        );
    }
}

//! Property tests for the parametric anatomies: every generated grid is a
//! simulable vessel — it has inflow and outflow, its lumen is one
//! 6-connected component (the solver's streaming graph reaches every fluid
//! cell), and the wall classification agrees with the bounce-back link
//! census (`solid_link_count`).

use hemocloud_geometry::anatomy::{AneurysmSpec, AortaSpec, CerebralSpec, CylinderSpec, StenosisSpec};
use hemocloud_geometry::classify::solid_link_count;
use hemocloud_geometry::{CellType, VoxelGrid};
use hemocloud_rt::check::{self, Config};

/// Number of 6-connected (axis-neighbor) fluid components.
fn fluid_components(grid: &VoxelGrid) -> usize {
    let (nx, ny, nz) = grid.dims();
    let idx = |x: usize, y: usize, z: usize| x + nx * (y + ny * z);
    let mut seen = vec![false; nx * ny * nz];
    let mut components = 0usize;
    let mut stack = Vec::new();
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if !grid.get(x, y, z).is_fluid() || seen[idx(x, y, z)] {
                    continue;
                }
                components += 1;
                seen[idx(x, y, z)] = true;
                stack.push((x, y, z));
                while let Some((cx, cy, cz)) = stack.pop() {
                    for (dx, dy, dz) in
                        [(1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)]
                    {
                        let (px, py, pz) =
                            (cx as i64 + dx, cy as i64 + dy, cz as i64 + dz);
                        if px < 0 || py < 0 || pz < 0 {
                            continue;
                        }
                        let (px, py, pz) = (px as usize, py as usize, pz as usize);
                        if px >= nx || py >= ny || pz >= nz {
                            continue;
                        }
                        if grid.get(px, py, pz).is_fluid() && !seen[idx(px, py, pz)] {
                            seen[idx(px, py, pz)] = true;
                            stack.push((px, py, pz));
                        }
                    }
                }
            }
        }
    }
    components
}

/// The three invariants every anatomy build must satisfy.
fn assert_simulable(grid: &VoxelGrid, label: &str) {
    let mut inlets = 0usize;
    let mut outlets = 0usize;
    for (x, y, z, c) in grid.iter_cells() {
        match c {
            CellType::Inlet => inlets += 1,
            CellType::Outlet => outlets += 1,
            CellType::Bulk => assert_eq!(
                solid_link_count(grid, x, y, z),
                0,
                "{label}: bulk cell ({x},{y},{z}) carries solid links"
            ),
            CellType::Wall => assert!(
                solid_link_count(grid, x, y, z) >= 1,
                "{label}: wall cell ({x},{y},{z}) has no solid link"
            ),
            CellType::Solid => {}
        }
    }
    assert!(inlets >= 1, "{label}: no inlet cells");
    assert!(outlets >= 1, "{label}: no outlet cells");
    assert_eq!(
        fluid_components(grid),
        1,
        "{label}: lumen is not a single 6-connected component"
    );
}

#[test]
fn random_stenoses_are_simulable() {
    check::run("random_stenoses_are_simulable", Config::cases(8), |rng| {
        let resolution = rng.range_usize(6, 15);
        let severity = rng.range_f64(0.0, 0.75);
        let spec = StenosisSpec {
            radius_mm: rng.range_f64(3.0, 7.0),
            length_mm: rng.range_f64(40.0, 80.0),
            lesion_length_mm: rng.range_f64(10.0, 30.0),
            ..StenosisSpec::default()
        }
        .with_resolution(resolution)
        .with_severity(severity);
        let grid = spec.build();
        assert_simulable(&grid, &format!("stenosis r{resolution} s{severity:.2}"));
    });
}

#[test]
fn random_aneurysms_are_simulable() {
    check::run("random_aneurysms_are_simulable", Config::cases(8), |rng| {
        let resolution = rng.range_usize(6, 15);
        let parent = rng.range_f64(3.0, 5.0);
        let sac = rng.range_f64(4.0, 8.0);
        let neck = rng.range_f64(1.5, sac.min(3.5));
        let spec = AneurysmSpec {
            parent_radius_mm: parent,
            parent_length_mm: rng.range_f64(35.0, 60.0),
            // Keep the sac overlapping the lumen so the neck stays open.
            dome_height_mm: parent + sac - rng.range_f64(1.5, 2.5),
            ..AneurysmSpec::default()
        }
        .with_resolution(resolution)
        .with_sac(sac, neck);
        let grid = spec.build();
        assert_simulable(&grid, &format!("aneurysm r{resolution} sac{sac:.1} neck{neck:.1}"));
    });
}

#[test]
fn stock_anatomies_are_simulable() {
    // The pre-existing generators satisfy the same invariants — the sweep
    // harness leans on this when mixing geometries in one scenario grid.
    assert_simulable(&CylinderSpec::default().with_resolution(10).build(), "cylinder");
    assert_simulable(&AortaSpec::default().with_resolution(10).build(), "aorta");
    // The cerebral tree's thinnest vessels can pinch to diagonal-only
    // (18-connected) junctions at coarse resolution, so it gets the
    // role/wall checks but not the 6-connectivity requirement the new
    // anatomies guarantee.
    let cereb = CerebralSpec::default().with_resolution(8).build();
    let mut inlets = 0usize;
    let mut outlets = 0usize;
    for (x, y, z, c) in cereb.iter_cells() {
        match c {
            CellType::Inlet => inlets += 1,
            CellType::Outlet => outlets += 1,
            CellType::Bulk => assert_eq!(solid_link_count(&cereb, x, y, z), 0),
            CellType::Wall => assert!(solid_link_count(&cereb, x, y, z) >= 1),
            CellType::Solid => {}
        }
    }
    assert!(inlets >= 1 && outlets >= 1);
}

//! Cross-crate physics integration: the real solvers on real anatomies,
//! and the ranked (halo-exchanging) execution against the global one.

use hemocloud::prelude::*;
use hemocloud_decomp::rcb::RcbPartition;
use hemocloud_lbm::mesh::FluidMesh;
use hemocloud_lbm::ranked::{RankAssignment, RankedSolver};
use hemocloud_lbm::solver::SolverConfig;

#[test]
fn flow_develops_in_every_anatomy() {
    let geometries = [
        ("cylinder", CylinderSpec::default().with_resolution(10).build()),
        ("aorta", AortaSpec::default().with_resolution(8).build()),
        (
            "cerebral",
            CerebralSpec::default()
                .with_generations(3)
                .with_resolution(8)
                .build(),
        ),
    ];
    for (name, grid) in geometries {
        let mesh = FluidMesh::build(&grid);
        let mut solver = Solver::new(mesh, SolverConfig::default());
        for _ in 0..150 {
            solver.step();
        }
        let vmax = solver.max_velocity();
        assert!(vmax > 1e-4, "{name}: flow failed to develop (v = {vmax})");
        assert!(
            vmax < 5.0 * solver.config().u_max,
            "{name}: unstable (v = {vmax})"
        );
        assert!(
            solver.distributions().iter().all(|v| v.is_finite()),
            "{name}: non-finite distributions"
        );
    }
}

#[test]
fn rcb_decomposed_execution_matches_global_bitwise() {
    // The full decomposition stack: voxelize an anatomy, partition with
    // RCB, map to fluid-cell ownership, run the ranked solver with halo
    // exchange, and compare with the global solver bit for bit.
    let grid = AortaSpec::default().with_resolution(8).build();
    let mesh = FluidMesh::build(&grid);
    let config = SolverConfig {
        parallel: false,
        ..Default::default()
    };
    let partition = RcbPartition::new(&grid, 6);
    let owner = partition.assign_fluid_cells(&grid);
    let assignment = RankAssignment::new(owner, 6);

    let mut global = Solver::new(mesh.clone(), config);
    let mut ranked = RankedSolver::new(mesh, assignment, config);
    for _ in 0..20 {
        global.step();
        ranked.step();
    }
    for (a, b) in global.distributions().iter().zip(ranked.distributions()) {
        assert_eq!(a, b);
    }
    // And the communication really happened.
    assert!(ranked.max_bytes_sent() > 0);
    assert!(ranked.max_messages_sent() > 0);
}

#[test]
fn halo_ledger_matches_decomposition_analysis() {
    // The bytes the ranked solver actually ships must equal what the
    // structural analysis predicts: boundary points x 19 distributions x 8
    // bytes (the solver snapshots whole boundary cells).
    use hemocloud_decomp::halo::DecompAnalysis;
    let grid = CylinderSpec::default().with_resolution(10).build();
    let mesh = FluidMesh::build(&grid);
    let n_ranks = 4;
    let partition = RcbPartition::new(&grid, n_ranks);
    let analysis = DecompAnalysis::analyze(&grid, &partition);
    let assignment = RankAssignment::new(partition.assign_fluid_cells(&grid), n_ranks);
    let mut ranked = RankedSolver::new(mesh, assignment, SolverConfig::default());
    ranked.step();

    for (task, ledger) in ranked.ledgers().iter().enumerate() {
        // The analysis counts each boundary point once per peer; the
        // solver ships each such cell's 19 f64 values.
        let expected_points: usize = analysis.messages[task].values().sum();
        let expected_bytes = (expected_points * 19 * 8) as u64;
        assert_eq!(
            ledger.bytes_sent, expected_bytes,
            "task {task}: ledger {} vs analysis {}",
            ledger.bytes_sent, expected_bytes
        );
        assert_eq!(ledger.messages_sent as usize, analysis.messages[task].len());
    }
}

#[test]
fn proxy_and_solver_agree_on_poiseuille_physics() {
    // Two independent implementations (dense proxy with body force,
    // sparse solver with inlet/outlet) must both produce parabolic pipe
    // flow; compare their normalized profiles.
    use hemocloud_lbm::kernel::{KernelConfig, Layout, Propagation};
    use hemocloud_lbm::proxy::ProxyApp;

    let mut proxy = ProxyApp::new(
        12,
        6,
        KernelConfig::proxy(Layout::Aos, Propagation::Ab, true),
        0.9,
        2e-6,
    );
    for _ in 0..2500 {
        proxy.step();
    }
    let profile = proxy.velocity_profile();
    let peak = profile.iter().map(|&(_, u)| u).fold(0.0f64, f64::max);
    let radius = 6.0;
    for &(r, u) in &profile {
        let expect = peak * (1.0 - (r / radius) * (r / radius));
        assert!(
            (u - expect).abs() <= 0.25 * peak,
            "proxy: r={r}, u={u}, expect={expect}"
        );
    }
    // Sanity: the analytic peak matches within staircase error.
    let analytic = proxy.analytic_peak_velocity();
    assert!(((peak - analytic) / analytic).abs() < 0.2);
}

//! End-to-end pipeline integration: characterize → predict → "measure" →
//! refine, across platforms and geometries.

use hemocloud::prelude::*;
use hemocloud_cluster::exec::{simulate_geometry, Overheads};
use hemocloud_cluster::pricing::PriceSheet;
use hemocloud_core::characterize::characterize_all;
use hemocloud_core::guard::GuardVerdict;
use hemocloud_lbm::kernel::KernelConfig;

const SEED: u64 = 99;

#[test]
fn models_overpredict_consistently_across_platforms_and_geometries() {
    // The paper's central claim, end to end: for every platform and
    // geometry, both models predict more throughput than the testbed
    // delivers, by a bounded factor.
    let geometries = [
        ("cylinder", CylinderSpec::default().with_resolution(14).build()),
        ("aorta", AortaSpec::default().with_resolution(12).build()),
    ];
    let overheads = Overheads::default();
    for platform in [Platform::trc(), Platform::csp2()] {
        let character = characterize(&platform, SEED);
        for (name, grid) in &geometries {
            let workload = Workload::harvey(grid, 100);
            let direct = DirectModel::new(character.clone(), workload.clone());
            let general = GeneralModel::from_characterization(&character, &workload);
            for ranks in [4usize, 16] {
                let measured =
                    simulate_geometry(&platform, grid, &workload.kernel, ranks, 100, &overheads, SEED, 0.0)
                        .expect("feasible");
                let d = direct.predict(ranks).expect("feasible");
                let g = general.predict(ranks);
                for (model_name, pred) in [("direct", d.mflups), ("general", g.mflups)] {
                    let ratio = pred / measured.mflups;
                    assert!(
                        (1.0..4.0).contains(&ratio),
                        "{} {name} on {} at {ranks} ranks: ratio {ratio}",
                        model_name,
                        platform.abbrev
                    );
                }
            }
        }
    }
}

#[test]
fn refinement_closes_most_of_the_prediction_gap() {
    let platform = Platform::csp2();
    let character = characterize(&platform, SEED);
    let grid = CylinderSpec::default().with_resolution(14).build();
    let workload = Workload::harvey(&grid, 100);
    let general = GeneralModel::from_characterization(&character, &workload);
    let overheads = Overheads::default();

    let mut calibrator = ModelCalibrator::new();
    for ranks in [4usize, 8, 16, 36] {
        let measured =
            simulate_geometry(&platform, &grid, &workload.kernel, ranks, 100, &overheads, SEED, 0.0)
                .expect("feasible");
        let pred = general.predict(ranks);
        calibrator.record(ranks, pred.step_time_s, measured.step_time_s);
    }
    assert!(calibrator.correction_factor() > 1.0, "measured is slower");
    assert!(
        calibrator.calibrated_error_pct() < 0.6 * calibrator.raw_error_pct(),
        "calibration {}% vs raw {}%",
        calibrator.calibrated_error_pct(),
        calibrator.raw_error_pct()
    );

    // Held-out rank count in the same (single-node, memory-bound) regime
    // as the training points: a scalar efficiency factor interpolates
    // within a regime; extrapolating across the node boundary needs the
    // richer terms the paper leaves to future work.
    let held_out = 24;
    let measured =
        simulate_geometry(&platform, &grid, &workload.kernel, held_out, 100, &overheads, SEED, 0.0)
            .expect("feasible");
    let raw = general.predict(held_out).step_time_s;
    let cal = calibrator.corrected_step_s(raw);
    let raw_err = (raw - measured.step_time_s).abs();
    let cal_err = (cal - measured.step_time_s).abs();
    assert!(
        cal_err < raw_err,
        "held-out: calibrated err {cal_err} !< raw err {raw_err}"
    );
}

#[test]
fn dashboard_guard_and_pricing_compose() {
    let characterizations = characterize_all(SEED);
    let grid = AortaSpec::default().with_resolution(12).build();
    let workload = Workload::harvey(&grid, 5_000);
    let prices = PriceSheet::default();
    let dashboard = Dashboard::build(&characterizations, &workload, &[16, 48, 128], &prices);
    assert!(!dashboard.entries.is_empty());

    // Every recommendation objective yields an entry; the guard built from
    // it accepts its own prediction and rejects a 2x overrun.
    for objective in [
        Objective::MaxThroughput,
        Objective::MinCost,
        Objective::Deadline(f64::INFINITY),
    ] {
        let e = dashboard.recommend(objective).expect("entry");
        let platform = Platform::all()
            .into_iter()
            .find(|p| p.abbrev == e.platform)
            .expect("known platform");
        let character = characterizations
            .iter()
            .find(|c| c.platform.abbrev == e.platform)
            .expect("characterized");
        let model = GeneralModel::from_characterization(character, &workload);
        let pred = model.predict(e.ranks);
        let guard = JobGuard::from_prediction(&pred, workload.steps, &platform, 0.10);
        assert_eq!(
            guard.check(guard.predicted_seconds, 0.0),
            GuardVerdict::WithinLimits
        );
        assert!(matches!(
            guard.check(guard.predicted_seconds * 2.0, 0.0),
            GuardVerdict::Exceeded { .. }
        ));
    }
}

#[test]
fn kernel_variants_order_as_the_paper_measures() {
    // On the simulated CPUs: AA ≥ AB at matched layout; AoS ≥ SoA for AB;
    // unrolled ≥ rolled.
    use hemocloud_lbm::kernel::{Layout, Propagation};
    let grid = CylinderSpec::default().with_resolution(14).build();
    let platform = Platform::csp2();
    let overheads = Overheads::default();
    let run = |layout, prop, unrolled| {
        simulate_geometry(
            &platform,
            &grid,
            &KernelConfig::proxy(layout, prop, unrolled),
            16,
            100,
            &overheads,
            SEED,
            0.0,
        )
        .unwrap()
        .mflups
    };
    assert!(run(Layout::Soa, Propagation::Aa, true) > run(Layout::Soa, Propagation::Ab, true));
    assert!(run(Layout::Aos, Propagation::Ab, true) > run(Layout::Soa, Propagation::Ab, true));
    assert!(run(Layout::Soa, Propagation::Ab, true) > run(Layout::Soa, Propagation::Ab, false));
}

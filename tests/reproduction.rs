//! Paper-shape regression tests: every qualitative claim from the
//! evaluation section, checked computationally at test scale. These are
//! the assertions behind EXPERIMENTS.md.

use hemocloud::prelude::*;
use hemocloud_cluster::exec::{simulate_geometry, Overheads};
use hemocloud_cluster::network::LinkKind;
use hemocloud_fitting::metrics::coefficient_of_variation;
use hemocloud_lbm::kernel::KernelConfig;

const SEED: u64 = 2023;

#[test]
fn table2_sustained_below_published_except_csp1() {
    for p in Platform::all() {
        let c = characterize(&p, SEED);
        let sustained = c.memory_fit.eval(p.cores_per_node as f64);
        let diff = (sustained - p.published_bandwidth_mb_s) / p.published_bandwidth_mb_s;
        if p.abbrev == "CSP-1" {
            assert!(diff > 0.0, "CSP-1 should exceed published: {diff}");
        } else {
            assert!(diff < 0.0, "{} should sustain below published: {diff}", p.abbrev);
        }
    }
}

#[test]
fn table3_characterization_recovers_paper_constants() {
    let cases = [
        (Platform::trc(), 6768.24, 6.39, Some((5066.57, 2.01))),
        (Platform::csp2(), 7790.02, 9.00, Some((1804.84, 23.59))),
        (Platform::csp2_ec(), 7605.85, 11.00, Some((2016.77, 20.94))),
        (Platform::csp1(), 18092.64, 4.15, None),
    ];
    for (p, a1, a3, link) in cases {
        let c = characterize(&p, SEED);
        assert!(
            (c.memory_fit.a1 - a1).abs() / a1 < 0.15,
            "{}: a1 {} vs {a1}",
            p.abbrev,
            c.memory_fit.a1
        );
        assert!(
            (c.memory_fit.a3 - a3).abs() < 3.0,
            "{}: a3 {} vs {a3}",
            p.abbrev,
            c.memory_fit.a3
        );
        if let Some((b, l)) = link {
            assert!(
                (c.internodal_fit.bandwidth_mb_s - b).abs() / b < 0.15,
                "{}: b {} vs {b}",
                p.abbrev,
                c.internodal_fit.bandwidth_mb_s
            );
            assert!(
                (c.internodal_fit.latency_us - l).abs() / l < 0.2,
                "{}: l {} vs {l}",
                p.abbrev,
                c.internodal_fit.latency_us
            );
        }
    }
}

#[test]
fn table4_noise_is_small_and_cloud_comparable_to_dedicated() {
    let aorta = AortaSpec::default().with_resolution(10).build();
    let cfg = KernelConfig::harvey();
    let overheads = Overheads::default();
    let sample_cv = |platform: &Platform, ranks: usize| -> f64 {
        let samples: Vec<f64> = (0..28)
            .map(|i| {
                simulate_geometry(
                    platform,
                    &aorta,
                    &cfg,
                    ranks,
                    50,
                    &overheads,
                    SEED,
                    i as f64 * 6.0,
                )
                .expect("feasible")
                .mflups
            })
            .collect();
        coefficient_of_variation(&samples)
    };
    let dedicated = sample_cv(&Platform::csp1(), 16);
    let cloud = sample_cv(&Platform::csp2_small(), 16);
    for (name, cv) in [("CSP-1", dedicated), ("CSP-2 Small", cloud)] {
        assert!(
            (0.001..0.05).contains(&cv),
            "{name}: CV {cv} outside the paper's band"
        );
    }
    assert!(
        cloud < 3.0 * dedicated,
        "cloud noise ({cloud}) should not dwarf dedicated ({dedicated})"
    );
}

#[test]
fn fig5_hyperthreading_adds_no_bandwidth() {
    let hyp = characterize(&Platform::csp2_hyperthreaded(), SEED);
    // Bandwidth declines past the knee (a2 < 0) and the 72-thread point is
    // below the physical-core peak of the non-hyperthreaded instance.
    assert!(hyp.memory_fit.a2 < 0.0, "a2 = {}", hyp.memory_fit.a2);
    let plain = characterize(&Platform::csp2(), SEED);
    assert!(hyp.memory_fit.eval(72.0) < plain.memory_fit.eval(36.0));
}

#[test]
fn fig6_traditional_cluster_has_faster_interconnect() {
    let trc = characterize(&Platform::trc(), SEED);
    let csp2 = characterize(&Platform::csp2(), SEED);
    assert!(trc.internodal_fit.latency_us < csp2.internodal_fit.latency_us / 5.0);
    assert!(trc.internodal_fit.bandwidth_mb_s > 2.0 * csp2.internodal_fit.bandwidth_mb_s);
    // And EC improves on plain CSP-2 on both axes.
    let ec = characterize(&Platform::csp2_ec(), SEED);
    assert!(ec.internodal_fit.latency_us < csp2.internodal_fit.latency_us);
    assert!(ec.internodal_fit.bandwidth_mb_s > csp2.internodal_fit.bandwidth_mb_s);
}

#[test]
fn fig9_fig10_composition_shapes() {
    let platform = Platform::csp2();
    let character = characterize(&platform, SEED);
    let grid = CylinderSpec::default().with_resolution(16).build();
    let workload = Workload::harvey(&grid, 100);

    // Direct model: memory dominates on one node; internodal appears and
    // grows across nodes; intranodal stays small.
    let direct = DirectModel::new(character.clone(), workload.clone());
    let single = direct.predict(36).unwrap().composition;
    assert!(single.inter_s == 0.0 && single.mem_s > 0.0);
    let multi = direct.predict(144).unwrap().composition;
    assert!(multi.inter_s > 0.0);
    assert!(
        multi.intra_s < 0.3 * (multi.inter_s + multi.mem_s),
        "intranodal should be negligible: {multi:?}"
    );

    // General model: latency outweighs bandwidth in the comm term.
    let general = GeneralModel::from_characterization(&character, &workload);
    let c = general.predict(144).composition;
    assert!(
        c.comm_latency_s > c.comm_bandwidth_s,
        "latency {} !> bandwidth {}",
        c.comm_latency_s,
        c.comm_bandwidth_s
    );
}

#[test]
fn fig11_relative_value_ordering() {
    // At the extrapolated 2048-core scale on a big aorta census:
    // EC > CSP-2 > TRC, with ratios in the paper's neighborhood.
    let aorta = AortaSpec::default().with_resolution(12).build();
    let base = Workload::harvey(&aorta, 100);
    let factor = (2.0e7 / base.points() as f64).cbrt();
    let workload = base.scaled(factor);

    let mut mflups = Vec::new();
    for p in Platform::fig11_platforms() {
        let character = characterize(&p, SEED);
        let calibrated = GeneralModel::from_characterization(&character, &base);
        let model = GeneralModel::with_models(
            &character,
            &workload,
            *calibrated.imbalance_model(),
            *calibrated.event_model(),
        );
        mflups.push((p.abbrev.to_string(), model.predict(2048).mflups));
    }
    let get = |abbr: &str| mflups.iter().find(|(a, _)| a == abbr).unwrap().1;
    let (trc, csp2, ec) = (get("TRC"), get("CSP-2"), get("CSP-2 EC"));
    assert!(ec > csp2 && csp2 > trc, "ordering: {mflups:?}");
    let r_csp2_trc = csp2 / trc;
    let r_ec_trc = ec / trc;
    assert!(
        (1.02..2.2).contains(&r_csp2_trc),
        "r(CSP-2,TRC) = {r_csp2_trc} (paper: 1.2323)"
    );
    assert!(
        (1.05..2.5).contains(&r_ec_trc),
        "r(EC,TRC) = {r_ec_trc} (paper: 1.3733)"
    );
}

#[test]
fn interconnect_study_ec_pays_on_communication_heavy_workloads() {
    let cylinder = CylinderSpec::default().with_resolution(14).build();
    let cfg = KernelConfig::harvey();
    let overheads = Overheads::default();
    let ranks = 144; // 4 nodes
    let ec = simulate_geometry(&Platform::csp2_ec(), &cylinder, &cfg, ranks, 50, &overheads, SEED, 0.0)
        .unwrap();
    let no_ec =
        simulate_geometry(&Platform::csp2(), &cylinder, &cfg, ranks, 50, &overheads, SEED, 0.0)
            .unwrap();
    assert!(ec.mflups > no_ec.mflups);

    // ... and barely matters within a single node.
    let ec1 = simulate_geometry(&Platform::csp2_ec(), &cylinder, &cfg, 36, 50, &overheads, SEED, 0.0)
        .unwrap();
    let no_ec1 =
        simulate_geometry(&Platform::csp2(), &cylinder, &cfg, 36, 50, &overheads, SEED, 0.0)
            .unwrap();
    let single_node_gap = (ec1.mflups / no_ec1.mflups - 1.0).abs();
    let multi_node_gap = ec.mflups / no_ec.mflups - 1.0;
    assert!(
        multi_node_gap > single_node_gap,
        "EC should matter more across nodes: {multi_node_gap} vs {single_node_gap}"
    );
}

#[test]
fn measured_aa_beats_ab_and_link_kinds_are_ordered() {
    // Two quick cross-checks the figures rely on.
    let cylinder = CylinderSpec::default().with_resolution(14).build();
    let overheads = Overheads::default();
    use hemocloud_lbm::kernel::{Layout, Propagation};
    let p = Platform::csp2();
    let aa = simulate_geometry(
        &p,
        &cylinder,
        &KernelConfig::proxy(Layout::Soa, Propagation::Aa, true),
        16,
        50,
        &overheads,
        SEED,
        0.0,
    )
    .unwrap();
    let ab = simulate_geometry(
        &p,
        &cylinder,
        &KernelConfig::proxy(Layout::Soa, Propagation::Ab, true),
        16,
        50,
        &overheads,
        SEED,
        0.0,
    )
    .unwrap();
    assert!(aa.mflups > ab.mflups, "AA {} !> AB {}", aa.mflups, ab.mflups);

    let c = characterize(&p, SEED);
    assert!(
        c.message_time_s(LinkKind::Intranodal, 1e4)
            < c.message_time_s(LinkKind::Internodal, 1e4)
    );
}

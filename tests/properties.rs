//! Cross-crate property-based tests (`hemocloud_rt::check`): invariants
//! that must hold for *arbitrary* inputs, not just the handcrafted cases.
//! Historic failing seeds are committed as explicit `regression_*` tests.

use hemocloud::prelude::*;
use hemocloud_decomp::halo::DecompAnalysis;
use hemocloud_decomp::rcb::RcbPartition;
use hemocloud_fitting::two_line::{fit_two_line, TwoLineFit};
use hemocloud_geometry::classify::classify_walls;
use hemocloud_geometry::voxel::VoxelGrid;
use hemocloud_lbm::equilibrium::{equilibrium_d3q19, macroscopics_d3q19};
use hemocloud_lbm::mesh::FluidMesh;
use hemocloud_lbm::solver::SolverConfig;
use hemocloud_rt::check::{self, Config};
use hemocloud_rt::rng::Rng;

/// A small random grid: a solid box with a random fluid blob pattern
/// (every fluid voxel chosen i.i.d., then walls classified).
fn random_grid(rng: &mut Rng) -> VoxelGrid {
    let nx = rng.range_usize(3, 7);
    let ny = rng.range_usize(3, 7);
    let nz = rng.range_usize(3, 7);
    let mut grid = VoxelGrid::solid(nx, ny, nz, 1.0);
    let mut any_fluid = false;
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if rng.range_u64(0, 100) < 60 {
                    grid.set(x, y, z, CellType::Bulk);
                    any_fluid = true;
                }
            }
        }
    }
    if !any_fluid {
        grid.set(nx / 2, ny / 2, nz / 2, CellType::Bulk);
    }
    classify_walls(&mut grid);
    grid
}

#[test]
fn equilibrium_moments_roundtrip() {
    check::run("equilibrium_moments_roundtrip", Config::cases(24), |rng| {
        let rho = rng.range_f64(0.5, 2.0);
        let ux = rng.range_f64(-0.1, 0.1);
        let uy = rng.range_f64(-0.1, 0.1);
        let uz = rng.range_f64(-0.1, 0.1);
        let mut f = [0.0; 19];
        equilibrium_d3q19(rho, ux, uy, uz, &mut f);
        let (r, vx, vy, vz) = macroscopics_d3q19(&f);
        assert!((r - rho).abs() < 1e-12);
        assert!((vx - ux).abs() < 1e-12);
        assert!((vy - uy).abs() < 1e-12);
        assert!((vz - uz).abs() < 1e-12);
    });
}

#[test]
fn closed_box_mass_is_conserved_on_random_geometry() {
    check::run(
        "closed_box_mass_is_conserved_on_random_geometry",
        Config::cases(24),
        |rng| {
            // Any sealed random blob: perturb one cell, run, mass must hold.
            let grid = random_grid(rng);
            let bump = rng.range_f64(0.0, 0.02);
            let mesh = FluidMesh::build(&grid);
            let mut solver = Solver::new(
                mesh,
                SolverConfig {
                    parallel: false,
                    ..Default::default()
                },
            );
            // (random grids have no inlets/outlets, so the system is closed)
            let m0 = solver.total_mass() + bump;
            solver.bump_first_cell(bump);
            for _ in 0..20 {
                solver.step();
            }
            let m1 = solver.total_mass();
            assert!((m0 - m1).abs() < 1e-9 * m0, "mass {m0} -> {m1}");
        },
    );
}

/// The invariants `rcb_partitions_any_geometry_exactly` asserts, factored
/// out so the historic regression case runs exactly the same checks.
fn assert_rcb_partitions_exactly(grid: &VoxelGrid, n_tasks: usize) {
    let n = n_tasks.min(grid.fluid_count());
    let partition = RcbPartition::new(grid, n);
    let analysis = DecompAnalysis::analyze(grid, &partition);
    // Every fluid point assigned exactly once.
    assert_eq!(
        analysis.points_per_task.iter().sum::<usize>(),
        grid.fluid_count()
    );
    // z is at least 1 by construction.
    assert!(analysis.z_factor() >= 1.0 - 1e-12);
    // Peer graph symmetric (sizes may differ across ragged fluid
    // boundaries: one sender point can border several receiver points),
    // and every message is non-empty and bounded by its sender's point
    // count.
    assert!(analysis.is_peer_symmetric());
    for (t, msgs) in analysis.messages.iter().enumerate() {
        for (&peer, &pts) in msgs {
            assert!(peer != t, "self-message");
            assert!(pts >= 1);
            assert!(pts <= analysis.points_per_task[t]);
        }
    }
}

#[test]
fn rcb_partitions_any_geometry_exactly() {
    check::run(
        "rcb_partitions_any_geometry_exactly",
        Config::cases(24),
        |rng| {
            let grid = random_grid(rng);
            let n_tasks = rng.range_usize(1, 9);
            assert_rcb_partitions_exactly(&grid, n_tasks);
        },
    );
}

/// Historic proptest-shrunk failure (formerly in
/// `properties.proptest-regressions`): a 3×3×3 all-solid/wall blob whose
/// two fluid islands once broke peer symmetry at `n_tasks = 2`.
#[test]
fn regression_rcb_two_tasks_on_sparse_wall_blob() {
    use CellType::{Solid, Wall};
    let cells = [
        Solid, Solid, Wall, Wall, Wall, Wall, Wall, Wall, Solid, //
        Wall, Solid, Solid, Solid, Solid, Solid, Solid, Solid, Wall, //
        Wall, Wall, Wall, Solid, Solid, Wall, Solid, Solid, Wall,
    ];
    let mut grid = VoxelGrid::solid(3, 3, 3, 1.0);
    for (idx, &cell) in cells.iter().enumerate() {
        grid.set_linear(idx, cell);
    }
    assert_rcb_partitions_exactly(&grid, 2);
}

#[test]
fn two_line_fit_recovers_noiseless_curves() {
    check::run(
        "two_line_fit_recovers_noiseless_curves",
        Config::cases(24),
        |rng| {
            let a1 = rng.range_f64(1000.0, 20_000.0);
            let a2_frac = rng.range_f64(-0.05, 0.5);
            let a3 = rng.range_f64(2.0, 20.0);
            let cores = rng.range_usize(8, 48);
            let truth = TwoLineFit {
                a1,
                a2: a1 * a2_frac,
                a3: a3.min(cores as f64 - 1.0),
                sse: 0.0,
            };
            let ns: Vec<f64> = (1..=cores).map(|n| n as f64).collect();
            let bs: Vec<f64> = ns.iter().map(|&n| truth.eval(n)).collect();
            let fit = fit_two_line(&ns, &bs).expect("fittable");
            // The fitted curve reproduces the data everywhere (parameters
            // may trade off when the knee sits between integer thread
            // counts).
            for (&n, &b) in ns.iter().zip(&bs) {
                assert!(
                    (fit.eval(n) - b).abs() <= 0.03 * b.abs().max(1.0),
                    "n={}: fit {} vs truth {}",
                    n,
                    fit.eval(n),
                    b
                );
            }
        },
    );
}

#[test]
fn relative_value_matrix_is_reciprocal() {
    check::run(
        "relative_value_matrix_is_reciprocal",
        Config::cases(24),
        |rng| {
            let len = rng.range_usize(2, 6);
            let entries: Vec<(String, f64)> = (0..len)
                .map(|i| (format!("p{i}"), rng.range_f64(1.0, 1000.0)))
                .collect();
            let matrix = hemocloud_core::value::relative_value_matrix(&entries);
            for b in 0..entries.len() {
                assert!((matrix.get(b, b) - 1.0).abs() < 1e-12);
                for a in 0..entries.len() {
                    assert!((matrix.get(b, a) * matrix.get(a, b) - 1.0).abs() < 1e-9);
                }
            }
        },
    );
}

#[test]
fn guard_never_rejects_usage_within_prediction() {
    check::run(
        "guard_never_rejects_usage_within_prediction",
        Config::cases(24),
        |rng| {
            use hemocloud_core::composition::{Composition, Prediction};
            use hemocloud_core::guard::{GuardVerdict, JobGuard};
            let step_us = rng.range_f64(1.0, 10_000.0);
            let steps = rng.range_u64(1, 100_000);
            let tolerance = rng.range_f64(0.0, 0.5);
            let pred = Prediction::from_composition(
                36,
                1_000_000,
                Composition {
                    mem_s: step_us * 1e-6,
                    ..Default::default()
                },
            );
            let guard = JobGuard::from_prediction(&pred, steps, &Platform::csp2(), tolerance);
            assert_eq!(
                guard.check(guard.predicted_seconds, 0.0),
                GuardVerdict::WithinLimits
            );
            let exceeded = matches!(
                guard.check(guard.max_seconds * 1.01 + 1e-9, 0.0),
                GuardVerdict::Exceeded { .. }
            );
            assert!(exceeded);
        },
    );
}

//! Cross-crate property-based tests (proptest): invariants that must hold
//! for *arbitrary* inputs, not just the handcrafted cases.

use hemocloud::prelude::*;
use hemocloud_decomp::halo::DecompAnalysis;
use hemocloud_decomp::rcb::RcbPartition;
use hemocloud_fitting::two_line::{fit_two_line, TwoLineFit};
use hemocloud_geometry::classify::classify_walls;
use hemocloud_geometry::voxel::VoxelGrid;
use hemocloud_lbm::equilibrium::{equilibrium_d3q19, macroscopics_d3q19};
use hemocloud_lbm::mesh::FluidMesh;
use hemocloud_lbm::solver::SolverConfig;
use proptest::prelude::*;

/// A small random grid: a solid box with a random fluid blob pattern
/// (every fluid voxel chosen i.i.d., then walls classified).
fn random_grid() -> impl Strategy<Value = VoxelGrid> {
    (3usize..7, 3usize..7, 3usize..7, any::<u64>()).prop_map(|(nx, ny, nz, seed)| {
        let mut grid = VoxelGrid::solid(nx, ny, nz, 1.0);
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut any_fluid = false;
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    if next() % 100 < 60 {
                        grid.set(x, y, z, CellType::Bulk);
                        any_fluid = true;
                    }
                }
            }
        }
        if !any_fluid {
            grid.set(nx / 2, ny / 2, nz / 2, CellType::Bulk);
        }
        classify_walls(&mut grid);
        grid
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn equilibrium_moments_roundtrip(
        rho in 0.5f64..2.0,
        ux in -0.1f64..0.1,
        uy in -0.1f64..0.1,
        uz in -0.1f64..0.1,
    ) {
        let mut f = [0.0; 19];
        equilibrium_d3q19(rho, ux, uy, uz, &mut f);
        let (r, vx, vy, vz) = macroscopics_d3q19(&f);
        prop_assert!((r - rho).abs() < 1e-12);
        prop_assert!((vx - ux).abs() < 1e-12);
        prop_assert!((vy - uy).abs() < 1e-12);
        prop_assert!((vz - uz).abs() < 1e-12);
    }

    #[test]
    fn closed_box_mass_is_conserved_on_random_geometry(grid in random_grid(), bump in 0.0f64..0.02) {
        // Any sealed random blob: perturb one cell, run, mass must hold.
        let mesh = FluidMesh::build(&grid);
        let mut solver = Solver::new(mesh, SolverConfig { parallel: false, ..Default::default() });
        // (random grids have no inlets/outlets, so the system is closed)
        let m0 = solver.total_mass() + bump;
        solver.bump_first_cell(bump);
        for _ in 0..20 {
            solver.step();
        }
        let m1 = solver.total_mass();
        prop_assert!((m0 - m1).abs() < 1e-9 * m0, "mass {m0} -> {m1}");
    }

    #[test]
    fn rcb_partitions_any_geometry_exactly(grid in random_grid(), n_tasks in 1usize..9) {
        let n = n_tasks.min(grid.fluid_count());
        let partition = RcbPartition::new(&grid, n);
        let analysis = DecompAnalysis::analyze(&grid, &partition);
        // Every fluid point assigned exactly once.
        prop_assert_eq!(
            analysis.points_per_task.iter().sum::<usize>(),
            grid.fluid_count()
        );
        // z is at least 1 by construction.
        prop_assert!(analysis.z_factor() >= 1.0 - 1e-12);
        // Peer graph symmetric (sizes may differ across ragged fluid
        // boundaries: one sender point can border several receiver
        // points), and every message is non-empty and bounded by its
        // sender's point count.
        prop_assert!(analysis.is_peer_symmetric());
        for (t, msgs) in analysis.messages.iter().enumerate() {
            for (&peer, &pts) in msgs {
                prop_assert!(peer != t, "self-message");
                prop_assert!(pts >= 1);
                prop_assert!(pts <= analysis.points_per_task[t]);
            }
        }
    }

    #[test]
    fn two_line_fit_recovers_noiseless_curves(
        a1 in 1000.0f64..20_000.0,
        a2_frac in -0.05f64..0.5,
        a3 in 2.0f64..20.0,
        cores in 8usize..48,
    ) {
        let truth = TwoLineFit { a1, a2: a1 * a2_frac, a3: a3.min(cores as f64 - 1.0), sse: 0.0 };
        let ns: Vec<f64> = (1..=cores).map(|n| n as f64).collect();
        let bs: Vec<f64> = ns.iter().map(|&n| truth.eval(n)).collect();
        let fit = fit_two_line(&ns, &bs).expect("fittable");
        // The fitted curve reproduces the data everywhere (parameters may
        // trade off when the knee sits between integer thread counts).
        for (&n, &b) in ns.iter().zip(&bs) {
            prop_assert!(
                (fit.eval(n) - b).abs() <= 0.03 * b.abs().max(1.0),
                "n={}: fit {} vs truth {}", n, fit.eval(n), b
            );
        }
    }

    #[test]
    fn relative_value_matrix_is_reciprocal(
        m in proptest::collection::vec(1.0f64..1000.0, 2..6)
    ) {
        let entries: Vec<(String, f64)> = m
            .iter()
            .enumerate()
            .map(|(i, &v)| (format!("p{i}"), v))
            .collect();
        let matrix = hemocloud_core::value::relative_value_matrix(&entries);
        for b in 0..entries.len() {
            prop_assert!((matrix.get(b, b) - 1.0).abs() < 1e-12);
            for a in 0..entries.len() {
                prop_assert!((matrix.get(b, a) * matrix.get(a, b) - 1.0).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn guard_never_rejects_usage_within_prediction(
        step_us in 1.0f64..10_000.0,
        steps in 1u64..100_000,
        tolerance in 0.0f64..0.5,
    ) {
        use hemocloud_core::composition::{Composition, Prediction};
        use hemocloud_core::guard::{GuardVerdict, JobGuard};
        let pred = Prediction::from_composition(
            36,
            1_000_000,
            Composition { mem_s: step_us * 1e-6, ..Default::default() },
        );
        let guard = JobGuard::from_prediction(&pred, steps, &Platform::csp2(), tolerance);
        prop_assert_eq!(
            guard.check(guard.predicted_seconds, 0.0),
            GuardVerdict::WithinLimits
        );
        let exceeded = matches!(
            guard.check(guard.max_seconds * 1.01 + 1e-9, 0.0),
            GuardVerdict::Exceeded { .. }
        );
        prop_assert!(exceeded);
    }
}
